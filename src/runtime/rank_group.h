// RankGroup: in-process concurrent execution of R expert-parallel ranks.
//
// The paper's fused kernels run one producer/consumer pipeline PER RANK, all
// ranks live at once: each rank's layer0 tiles consume token rows that peer
// ranks put into its symmetric-heap window, gated by put-with-signal
// counters (§2.2.1, §4). Before this runtime existed, the functional plane
// executed those R ranks as one serial loop -- the signal discipline was
// asserted after the fact, never actually exercised as synchronization.
//
// RankGroup closes that gap. Each rank becomes a task with two stages:
//  * produce  -- gather inputs, run the rank's tile loops, put result rows
//                (with signals) into peer windows;
//  * consume  -- wait on the signal counters (SymmetricHeap::
//                WaitUntilSignalGe) and reduce the gathered rows.
//
// Concurrent mode gives every rank a dedicated thread: produce stages of
// all ranks overlap, and a consumer genuinely blocks on its producers'
// signals -- the paper's fine-grained pipeline, host-side. Serial mode
// (num_threads == 1) runs all produce stages in rank order, then all
// consume stages: every signal a consumer waits on is already set, which is
// exactly the pre-concurrency behavior.
//
// Bit-exactness: the two modes differ only in WHEN stages run, never in the
// order of floating-point accumulation -- every reduction a stage performs
// must order its terms by coordinates (token, slot, lane), not by arrival.
// Under that discipline (the same one the tile engine follows, see
// util/thread_pool.h) serial and concurrent runs, at any thread count and
// any EP width, produce identical bits; tests/rank_group_test.cc pins this
// against the sharded reference for EP in {1,2,4,8}.
//
// Rank tasks run on dedicated std::threads rather than pool workers on
// purpose: a consumer parked in a signal wait must not occupy a pool worker,
// or producers fanning tile work into the pool could starve behind it (the
// classic blocked-task-on-bounded-pool deadlock). The pool still executes
// all intra-rank parallelism -- each rank thread re-installs the caller's
// ScopedThreadLimit and fans its tile/row loops out through ParallelFor.
#pragma once

#include <functional>

namespace comet {

struct RankGroupOptions {
  // Concurrency policy: 0 = inherit (the innermost ScopedThreadLimit if one
  // is active, else the global pool size); 1 = serial phased execution;
  // >= 2 = concurrent, one dedicated thread per rank.
  int num_threads = 0;
  // Insert a full barrier between the produce and consume phases. The COMET
  // path gates consumption on per-row signals and runs barrier-free; the
  // canonical/baseline paths exchange rows through plain tensors with no
  // signals, which is faithful to what they model -- kernel-per-op systems
  // separate communication and computation with exactly such a barrier.
  bool phase_barrier = false;
};

class RankGroup {
 public:
  explicit RankGroup(int num_ranks, RankGroupOptions options = {});

  int num_ranks() const { return num_ranks_; }
  // True when Run executes ranks on dedicated concurrent threads.
  bool concurrent() const { return concurrent_; }

  // Executes produce(r) and then consume(r) for every rank r in [0, R).
  // `consume` may be empty. Exceptions: each rank's first exception is
  // captured; after all ranks finish, the lowest-numbered rank's exception
  // is rethrown (matching ParallelFor). A rank that failed in produce skips
  // its consume stage; peers waiting on its signals time out through
  // SymmetricHeap::WaitUntilSignalGe rather than hanging.
  void Run(const std::function<void(int)>& produce,
           const std::function<void(int)>& consume) const;

  // Single-stage convenience.
  void Run(const std::function<void(int)>& work) const;

 private:
  int num_ranks_;
  RankGroupOptions options_;
  bool concurrent_;
};

}  // namespace comet
