// RankGroup: in-process concurrent execution of R expert-parallel ranks.
//
// The paper's fused kernels run one producer/consumer pipeline PER RANK, all
// ranks live at once: each rank's layer0 tiles consume token rows that peer
// ranks put into its symmetric-heap window, gated by put-with-signal
// counters (§2.2.1, §4). Before this runtime existed, the functional plane
// executed those R ranks as one serial loop -- the signal discipline was
// asserted after the fact, never actually exercised as synchronization.
//
// RankGroup closes that gap. Each rank becomes a task with two stages:
//  * produce  -- gather inputs, run the rank's tile loops, put result rows
//                (with signals) into peer windows;
//  * consume  -- wait on the signal counters (SymmetricHeap::
//                WaitUntilSignalGe) and reduce the gathered rows.
//
// Concurrent mode gives every rank a dedicated thread: produce stages of
// all ranks overlap, and a consumer genuinely blocks on its producers'
// signals -- the paper's fine-grained pipeline, host-side. Serial mode
// (num_threads == 1) runs all produce stages in rank order, then all
// consume stages: every signal a consumer waits on is already set, which is
// exactly the pre-concurrency behavior.
//
// Bit-exactness: the two modes differ only in WHEN stages run, never in the
// order of floating-point accumulation -- every reduction a stage performs
// must order its terms by coordinates (token, slot, lane), not by arrival.
// Under that discipline (the same one the tile engine follows, see
// util/thread_pool.h) serial and concurrent runs, at any thread count and
// any EP width, produce identical bits; tests/rank_group_test.cc pins this
// against the sharded reference for EP in {1,2,4,8}.
//
// Rank tasks run on dedicated std::threads rather than pool workers on
// purpose: a consumer parked in a signal wait must not occupy a pool worker,
// or producers fanning tile work into the pool could starve behind it (the
// classic blocked-task-on-bounded-pool deadlock). The pool still executes
// all intra-rank parallelism -- each rank thread re-installs the caller's
// ScopedThreadLimit and fans its tile/row loops out through ParallelFor.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/function_ref.h"

namespace comet {

struct RankGroupOptions {
  // Concurrency policy: 0 = inherit (the innermost ScopedThreadLimit if one
  // is active, else the global pool size); 1 = serial phased execution;
  // >= 2 = concurrent, one dedicated thread per rank.
  int num_threads = 0;
  // Insert a full barrier between the produce and consume phases. The COMET
  // path gates consumption on per-row signals and runs barrier-free; the
  // canonical/baseline paths exchange rows through plain tensors with no
  // signals, which is faithful to what they model -- kernel-per-op systems
  // separate communication and computation with exactly such a barrier.
  bool phase_barrier = false;
};

class RankGroup {
 public:
  explicit RankGroup(int num_ranks, RankGroupOptions options = {});

  int num_ranks() const { return num_ranks_; }
  // True when Run executes ranks on dedicated concurrent threads.
  bool concurrent() const { return concurrent_; }

  // Executes produce(r) and then consume(r) for every rank r in [0, R).
  // `consume` may be empty. Exceptions: each rank's first exception is
  // captured; after all ranks finish, the lowest-numbered rank's exception
  // is rethrown (matching ParallelFor). A rank that failed in produce skips
  // its consume stage; peers waiting on its signals time out through
  // SymmetricHeap::WaitUntilSignalGe rather than hanging.
  void Run(const std::function<void(int)>& produce,
           const std::function<void(int)>& consume) const;

  // Single-stage convenience.
  void Run(const std::function<void(int)>& work) const;

 private:
  int num_ranks_;
  RankGroupOptions options_;
  bool concurrent_;
};

// PersistentRankGroup: RankGroup semantics on parked, reusable rank threads.
//
// A serving loop launches the same R-rank pipeline thousands of times;
// spawning and joining R-1 std::threads per iteration is both slow and an
// allocation source. This variant keeps one dedicated thread per rank parked
// on a generation counter: Run publishes the stage callbacks, bumps the
// generation, and rank 0 executes on the caller while ranks 1..R-1 wake,
// run, and park again. Rank r always runs on thread r, so thread-local
// scratch (GEMM panels, wire buffers) warmed once per thread stays warm for
// that rank -- the property the zero-allocation serving tier depends on.
//
// Semantics match RankGroup::Run exactly: serial phased execution when the
// effective thread budget is 1, per-rank first-exception capture with the
// lowest rank's exception rethrown, optional produce/consume phase barrier,
// and re-installation of the caller's ScopedThreadLimit on every rank
// thread. Steady-state Run calls are allocation-free on every thread
// (FunctionRef stages, fixed error slots, condition-variable parking).
// Not thread-safe: one Run at a time.
class PersistentRankGroup {
 public:
  PersistentRankGroup() = default;
  ~PersistentRankGroup();
  PersistentRankGroup(const PersistentRankGroup&) = delete;
  PersistentRankGroup& operator=(const PersistentRankGroup&) = delete;

  // (Re)shapes the group: starts or stops dedicated threads as needed.
  // Allocates only when the shape or concurrency actually changes (warm-up).
  // The concurrency policy resolves against the thread limit active NOW,
  // exactly like the RankGroup constructor.
  void Configure(int num_ranks, RankGroupOptions options);

  int num_ranks() const { return num_ranks_; }
  bool concurrent() const { return concurrent_; }

  // Executes produce(r) then consume(r) for every rank (consume may be a
  // null FunctionRef). See RankGroup::Run for the full contract.
  void Run(FunctionRef<void(int)> produce, FunctionRef<void(int)> consume);
  void Run(FunctionRef<void(int)> work) { Run(work, FunctionRef<void(int)>()); }

 private:
  void RankBody(int r, FunctionRef<void(int)> produce,
                FunctionRef<void(int)> consume, int limit);
  void WorkerLoop(int r);
  void Shutdown();

  int num_ranks_ = 0;
  RankGroupOptions options_;
  bool concurrent_ = false;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::condition_variable barrier_cv_;
  uint64_t generation_ = 0;
  int done_ = 0;
  int arrived_ = 0;
  bool shutdown_ = false;
  int run_limit_ = 0;
  FunctionRef<void(int)> produce_;
  FunctionRef<void(int)> consume_;
  std::vector<std::exception_ptr> errors_;
  std::vector<std::thread> threads_;  // ranks 1 .. R-1
};

}  // namespace comet
