#include "runtime/model_runner.h"

#include "core/comet_backward.h"
#include "exec/op_costs.h"
#include "util/check.h"

namespace comet {

ModelRunResult RunModel(MoeLayerExecutor& executor,
                        const ModelRunConfig& config,
                        const ClusterSpec& cluster) {
  COMET_CHECK_GT(config.total_tokens, 0);
  COMET_CHECK(executor.Supports(config.parallel))
      << executor.name() << " does not support "
      << config.parallel.ToString();

  WorkloadOptions options;
  options.seed = config.seed;
  options.load_std = config.load_std;
  // The runner only exercises the timing plane; materializing weights for a
  // paper-scale model would cost gigabytes for nothing.
  options.materialize = false;
  const MoeWorkload workload = MakeWorkload(config.model, config.parallel,
                                            config.total_tokens, options);

  const OpCostModel costs(cluster);
  // Tokens per device outside the MoE layer: the EP-group shard (replicated
  // across TP lanes).
  const int64_t device_tokens = workload.placement.tokens_per_group();
  // Attention block: QKV + core attention + projection kernels (identical
  // across mechanisms), plus a handful of launches.
  const double attention_us =
      costs.AttentionUs(device_tokens, config.model.embedding,
                        config.parallel.tp) +
      6.0 * costs.LaunchUs();

  ModelRunResult result;
  result.executor = executor.name();
  result.moe_layer = executor.Run(workload, cluster, ExecMode::kTimedOnly);
  result.attention_us = attention_us;
  result.moe_us = result.moe_layer.duration_us;
  const double layers = static_cast<double>(config.model.layers);
  result.total_ms = layers * (attention_us + result.moe_us) / 1000.0;
  result.moe_only_ms = layers * result.moe_us / 1000.0;
  return result;
}

TrainStepResult RunTrainingStep(MoeLayerExecutor& executor,
                                MoeBackwardKind backward,
                                const ModelRunConfig& config,
                                const ClusterSpec& cluster) {
  COMET_CHECK_GT(config.total_tokens, 0);
  WorkloadOptions options;
  options.seed = config.seed;
  options.load_std = config.load_std;
  options.materialize = false;
  const MoeWorkload workload = MakeWorkload(config.model, config.parallel,
                                            config.total_tokens, options);
  const OpCostModel costs(cluster);
  const int64_t device_tokens = workload.placement.tokens_per_group();
  const double attention_fwd =
      costs.AttentionUs(device_tokens, config.model.embedding,
                        config.parallel.tp) +
      6.0 * costs.LaunchUs();

  TrainStepResult result;
  result.name = executor.name() + (backward == MoeBackwardKind::kComet
                                       ? "+Comet-bwd"
                                       : "+seq-bwd");
  result.attention_fwd_us = attention_fwd;
  result.attention_bwd_us = 2.0 * attention_fwd;
  result.moe_fwd_us =
      executor.Run(workload, cluster, ExecMode::kTimedOnly).duration_us;
  const std::vector<Tensor> no_dout;
  result.moe_bwd_us =
      backward == MoeBackwardKind::kComet
          ? CometBackward(workload, cluster, no_dout, ExecMode::kTimedOnly)
                .duration_us
          : SequentialBackward(workload, cluster, no_dout,
                               ExecMode::kTimedOnly)
                .duration_us;
  const double layers = static_cast<double>(config.model.layers);
  const double per_layer = result.attention_fwd_us + result.attention_bwd_us +
                           result.moe_fwd_us + result.moe_bwd_us;
  result.total_ms = layers * per_layer / 1000.0;
  result.moe_only_ms =
      layers * (result.moe_fwd_us + result.moe_bwd_us) / 1000.0;
  return result;
}

double MoeCommFraction(const LayerExecution& layer) {
  const double comm = layer.timeline.CategoryBusy(OpCategory::kLayer0Comm) +
                      layer.timeline.CategoryBusy(OpCategory::kLayer1Comm);
  const double comp = layer.timeline.CategoryBusy(OpCategory::kLayer0Comp) +
                      layer.timeline.CategoryBusy(OpCategory::kLayer1Comp) +
                      layer.timeline.CategoryBusy(OpCategory::kGating) +
                      layer.timeline.CategoryBusy(OpCategory::kActivation);
  const double total = comm + comp;
  if (total <= 0.0) {
    return 0.0;
  }
  return comm / total;
}

}  // namespace comet
