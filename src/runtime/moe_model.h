// A functional stack of L MoE layers (the MoE half of a transformer).
//
// Each layer owns its expert weights and a learned gate; layer l's combined
// output (plus a residual connection, matching the transformer block
// structure) feeds layer l+1's gate and experts, so routing is CONTENT
// dependent and changes layer to layer -- unlike the synthetic single-layer
// workloads, this exercises the full gate -> dispatch -> experts -> combine
// chain repeatedly through one executor.
//
// The communication buffer is planned once for the whole stack
// (comm/memory_planner): the paper's Table 3 point that the NVSHMEM buffer
// "is shared across layers and experts", making its footprint independent of
// L, E and topk.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "comm/memory_planner.h"
#include "exec/execution.h"
#include "moe/workload.h"

namespace comet {

struct MoeModelOptions {
  uint64_t seed = 1;
  bool residual = true;  // out_l = in_l + moe_l(in_l)
  float weight_stddev = 0.05f;
  ActivationKind activation = ActivationKind::kGelu;
};

class MoeModel {
 public:
  MoeModel(const ModelConfig& model, const ParallelConfig& parallel,
           int64_t total_tokens, const MoeModelOptions& options = {});

  const ModelConfig& model() const { return model_; }
  int64_t num_layers() const { return model_.layers; }
  const CommBufferPlan& comm_plan() const { return comm_plan_; }

  // Random iid N(0,1) inputs, one (M/EP, N) tensor per EP group.
  std::vector<Tensor> MakeInputs(uint64_t seed) const;

  // Builds layer `layer`'s fully-routed workload for the given activations
  // (gate routing computed from the actual token contents).
  MoeWorkload LayerWorkload(int64_t layer,
                            const std::vector<Tensor>& activations) const;

  // Functional forward of the whole stack through `executor`.
  std::vector<Tensor> Forward(MoeLayerExecutor& executor,
                              const ClusterSpec& cluster,
                              const std::vector<Tensor>& inputs) const;

  // Ground truth through the sharded reference layer.
  std::vector<Tensor> ReferenceForward(const std::vector<Tensor>& inputs) const;

 private:
  std::vector<Tensor> Step(int64_t layer, const std::vector<Tensor>& in,
                           std::vector<Tensor> layer_out) const;

  ModelConfig model_;
  ParallelConfig parallel_;
  int64_t total_tokens_;
  MoeModelOptions options_;
  CommBufferPlan comm_plan_;
  // Per layer.
  std::vector<std::shared_ptr<const ExpertWeights>> weights_;
  std::vector<std::shared_ptr<const ShardedExpertWeights>> sharded_;
  std::vector<Tensor> gate_weights_;  // (N, E)
};

}  // namespace comet
