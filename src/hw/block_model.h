// Per-thread-block communication throughput (§3.2.1 "Hardware resource
// restriction").
//
// A communication thread block drives NVSHMEM transfers through a bounded
// issue pipeline: every message pays a fixed issue overhead (address
// computation, descriptor build, fence) before its bytes move at the
// block's peak rate. Effective bandwidth for message size s is therefore
//
//     b(s) = s / (t_issue + s / peak)
//
// which asymptotes to `peak` for large staged copies and collapses for
// token-sized scattered puts. This is the mechanism behind the two
// per-block constants in LinkSpec (contiguous vs scattered rates): the
// presets are cross-checked against this model in the tests, and it
// explains why EP-heavy configurations -- whose messages are single tokens
// -- need more communication blocks to fill the fabric (Figure 8).
#pragma once

#include "hw/gpu_spec.h"

namespace comet {

struct CommBlockModel {
  double peak_bytes_per_us = 0.0;  // large-message per-block ceiling
  double issue_overhead_us = 0.0;  // per message

  // Effective bandwidth of one block moving back-to-back messages of
  // `message_bytes` each.
  double BandwidthForMessage(double message_bytes) const;

  // Message size at which the block reaches `fraction` of its peak.
  double MessageBytesForFraction(double fraction) const;
};

// Calibrated so that token-sized puts (one BF16 row of the given embedding)
// reproduce the link's scattered per-block rate and large staged copies its
// contiguous rate.
CommBlockModel CommBlockModelForLink(const LinkSpec& link,
                                     int64_t token_bytes);

}  // namespace comet
