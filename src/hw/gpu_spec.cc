#include "hw/gpu_spec.h"

#include "util/check.h"
#include "util/units.h"

namespace comet {

std::string LinkTypeName(LinkType type) {
  switch (type) {
    case LinkType::kNvLink:
      return "NVLink";
    case LinkType::kPcie:
      return "PCIe";
  }
  COMET_CHECK(false) << "unknown link type";
  return "";
}

double GpuSpec::FlopsPerUsPerSm() const {
  COMET_CHECK_GT(num_sms, 0);
  return peak_flops_per_us / static_cast<double>(num_sms);
}

bool ClusterSpec::IsMultiNode() const {
  return gpus_per_node > 0 && gpus_per_node < world_size;
}

int ClusterSpec::GpusPerNode() const {
  return gpus_per_node > 0 ? gpus_per_node : world_size;
}

int ClusterSpec::NumNodes() const {
  const int per_node = GpusPerNode();
  COMET_CHECK_GT(per_node, 0);
  COMET_CHECK_EQ(world_size % per_node, 0)
      << "gpus_per_node must divide world_size";
  return world_size / per_node;
}

int ClusterSpec::NodeOfRank(int rank) const {
  COMET_CHECK_GE(rank, 0);
  COMET_CHECK_LT(rank, world_size);
  return rank / GpusPerNode();
}

bool ClusterSpec::SameNode(int a, int b) const {
  return NodeOfRank(a) == NodeOfRank(b);
}

const LinkSpec& ClusterSpec::LinkBetween(int a, int b) const {
  return (IsMultiNode() && !SameNode(a, b)) ? inter_link : link;
}

ClusterSpec H800Cluster(int world_size) {
  COMET_CHECK_GT(world_size, 0);
  ClusterSpec cluster;
  cluster.name = "H800x" + std::to_string(world_size);
  cluster.world_size = world_size;

  GpuSpec& gpu = cluster.gpu;
  gpu.name = "H800";
  gpu.num_sms = 132;
  // Dense BF16 tensor-core throughput; sustained GEMM efficiency on top of
  // this is handled by the GemmCostModel.
  gpu.peak_flops_per_us = TFlops(990.0);
  gpu.hbm_bandwidth_bytes_per_us = GBps(3350.0);
  gpu.kernel_launch_us = 8.0;

  LinkSpec& link = cluster.link;
  link.type = LinkType::kNvLink;
  // H800 NVLink: 400 GB/s bidirectional per GPU -> ~160 GB/s sustained
  // unidirectional for in-kernel transfers.
  link.bandwidth_bytes_per_us = GBps(160.0);
  // NCCL all-to-all at MoE message sizes (a few MB per peer) lands far below
  // wire rate; ring collectives pipeline better.
  link.collective_bandwidth_bytes_per_us = GBps(35.0);
  link.ring_bandwidth_bytes_per_us = GBps(110.0);
  link.collective_sync_us = 15.0;
  link.latency_us = 1.6;
  // One NVSHMEM-driven thread block sustains ~6 GB/s of contiguous puts
  // (ring-style reduce-scatter traffic) and ~1.5 GB/s of scattered
  // token-granular all-to-all puts. These rates put the balanced division
  // point nc* in the 16-50 range the paper measures in Figure 8.
  link.per_block_bandwidth_bytes_per_us = GBps(6.0);
  link.per_block_bandwidth_scattered_bytes_per_us = GBps(1.5);
  return cluster;
}

ClusterSpec L20Cluster(int world_size) {
  COMET_CHECK_GT(world_size, 0);
  ClusterSpec cluster;
  cluster.name = "L20x" + std::to_string(world_size);
  cluster.world_size = world_size;

  GpuSpec& gpu = cluster.gpu;
  gpu.name = "L20";
  gpu.num_sms = 92;
  gpu.peak_flops_per_us = TFlops(119.0);
  gpu.hbm_bandwidth_bytes_per_us = GBps(864.0);
  gpu.kernel_launch_us = 8.0;

  LinkSpec& link = cluster.link;
  link.type = LinkType::kPcie;
  // The paper measures ~25 GB/s GPU-to-GPU through PCIe bridges.
  link.bandwidth_bytes_per_us = GBps(25.0);
  link.collective_bandwidth_bytes_per_us = GBps(11.0);
  link.ring_bandwidth_bytes_per_us = GBps(18.0);
  link.collective_sync_us = 20.0;
  link.latency_us = 5.0;
  link.per_block_bandwidth_bytes_per_us = GBps(1.2);
  link.per_block_bandwidth_scattered_bytes_per_us = GBps(0.4);
  return cluster;
}

ClusterSpec MultiNodeH800Cluster(int num_nodes, int gpus_per_node) {
  COMET_CHECK_GT(num_nodes, 0);
  COMET_CHECK_GT(gpus_per_node, 0);
  ClusterSpec cluster = H800Cluster(num_nodes * gpus_per_node);
  cluster.name = "H800x" + std::to_string(gpus_per_node) + "x" +
                 std::to_string(num_nodes) + "nodes";
  cluster.gpus_per_node = gpus_per_node;

  LinkSpec& ib = cluster.inter_link;
  ib.type = LinkType::kPcie;  // closest enum: a non-NVLink fabric
  // NDR InfiniBand, one 400 Gb/s HCA per GPU: ~45 GB/s sustained
  // unidirectional for RDMA; collectives land lower, and the per-hop
  // latency is microseconds rather than NVLink's sub-2us.
  ib.bandwidth_bytes_per_us = GBps(45.0);
  ib.collective_bandwidth_bytes_per_us = GBps(18.0);
  ib.ring_bandwidth_bytes_per_us = GBps(38.0);
  ib.collective_sync_us = 25.0;
  ib.latency_us = 6.0;
  // GPU-initiated puts over IB (NVSHMEM IBGDA-style): one block sustains
  // noticeably less than over NVLink, scattered puts less still.
  ib.per_block_bandwidth_bytes_per_us = GBps(3.0);
  ib.per_block_bandwidth_scattered_bytes_per_us = GBps(0.8);
  return cluster;
}

}  // namespace comet
