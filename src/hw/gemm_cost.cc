#include "hw/gemm_cost.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace comet {
namespace {

// Reduction depth at which the pipeline reaches half of sustained
// efficiency. Below ~a few hundred elements of K the mainloop cannot hide
// global-memory latency behind MMAs.
constexpr double kHalfEfficiencyK = 192.0;

// Per-dimension tile-shape overhead: a tile of extent d along one dimension
// sustains d / (d + kTileEdgeOverhead) of the ideal rate along it (fixed
// prologue/epilogue work and partial tensor-core fragments dominate small
// extents).
constexpr double kTileEdgeOverhead = 16.0;

double EdgeEfficiency(int64_t d) {
  const double dd = static_cast<double>(d);
  return dd / (dd + kTileEdgeOverhead);
}

int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

}  // namespace

GemmCostModel::GemmCostModel(GpuSpec gpu, int tile_m, int tile_n,
                             double base_efficiency, double bytes_per_element)
    : gpu_(std::move(gpu)),
      tile_m_(tile_m),
      tile_n_(tile_n),
      base_efficiency_(base_efficiency),
      bytes_per_element_(bytes_per_element) {
  COMET_CHECK_GT(tile_m_, 0);
  COMET_CHECK_GT(tile_n_, 0);
  COMET_CHECK_GT(base_efficiency_, 0.0);
  COMET_CHECK_LE(base_efficiency_, 1.0);
  COMET_CHECK_GT(gpu_.num_sms, 0);
  COMET_CHECK_GT(gpu_.peak_flops_per_us, 0.0);
}

double GemmCostModel::KEfficiency(int64_t k) const {
  COMET_CHECK_GT(k, 0);
  const double kd = static_cast<double>(k);
  return kd / (kd + kHalfEfficiencyK);
}

double GemmCostModel::TileTimeUs(int64_t k) const {
  return TileTimeUs(k, tile_m_, tile_n_);
}

double GemmCostModel::TileShapeEfficiency(int64_t tile_m,
                                          int64_t tile_n) const {
  COMET_CHECK_GT(tile_m, 0);
  COMET_CHECK_GT(tile_n, 0);
  // Normalized so the model's native shape is exactly 1; larger tiles do
  // not beat the sustained rate the native shape was calibrated to.
  const double native = EdgeEfficiency(tile_m_) * EdgeEfficiency(tile_n_);
  const double shape = EdgeEfficiency(tile_m) * EdgeEfficiency(tile_n);
  return std::min(1.0, shape / native);
}

double GemmCostModel::TileTimeUs(int64_t k, int64_t tile_m,
                                 int64_t tile_n) const {
  const double flops = 2.0 * static_cast<double>(tile_m) *
                       static_cast<double>(tile_n) * static_cast<double>(k);
  const double rate = gpu_.FlopsPerUsPerSm() * base_efficiency_ *
                      KEfficiency(k) * TileShapeEfficiency(tile_m, tile_n);
  return flops / rate;
}

int64_t GemmCostModel::NumTiles(const GemmShape& shape) const {
  if (shape.m == 0 || shape.n == 0) {
    return 0;
  }
  return CeilDiv(shape.m, tile_m_) * CeilDiv(shape.n, tile_n_);
}

double GemmCostModel::MemoryFloorUs(const GemmShape& shape, int sms) const {
  // A (m,k) x (k,n) GEMM reads both operands and writes the output at least
  // once. SMs share HBM bandwidth roughly proportionally.
  const double bytes =
      bytes_per_element_ *
      (static_cast<double>(shape.m) * static_cast<double>(shape.k) +
       static_cast<double>(shape.k) * static_cast<double>(shape.n) +
       static_cast<double>(shape.m) * static_cast<double>(shape.n));
  const double share =
      gpu_.hbm_bandwidth_bytes_per_us *
      (static_cast<double>(sms) / static_cast<double>(gpu_.num_sms));
  return bytes / share;
}

double GemmCostModel::TimeUs(const GemmShape& shape, int sms) const {
  COMET_CHECK_GT(sms, 0);
  COMET_CHECK_LE(sms, gpu_.num_sms);
  if (shape.m == 0 || shape.n == 0 || shape.k == 0) {
    return 0.0;
  }
  const int64_t tiles = NumTiles(shape);
  const int64_t waves = CeilDiv(tiles, sms);
  const double compute = static_cast<double>(waves) * TileTimeUs(shape.k);
  return std::max(compute, MemoryFloorUs(shape, sms));
}

double GemmCostModel::GroupTimeUs(const std::vector<GemmShape>& groups,
                                  int sms) const {
  COMET_CHECK_GT(sms, 0);
  COMET_CHECK_LE(sms, gpu_.num_sms);
  if (groups.empty()) {
    return 0.0;
  }
  const int64_t n = groups.front().n;
  const int64_t k = groups.front().k;
  int64_t tiles = 0;
  GemmShape mem_total{0, n, k};
  for (const auto& g : groups) {
    COMET_CHECK_EQ(g.n, n) << "GroupGEMM groups must share n";
    COMET_CHECK_EQ(g.k, k) << "GroupGEMM groups must share k";
    tiles += NumTiles(g);
    mem_total.m += g.m;
  }
  if (tiles == 0 || k == 0 || n == 0) {
    return 0.0;
  }
  const int64_t waves = CeilDiv(tiles, sms);
  const double compute = static_cast<double>(waves) * TileTimeUs(k);
  // Weights of every (active) expert are read once regardless of m, so the
  // memory floor includes one k*n operand per group with m > 0.
  double bytes = bytes_per_element_ * (static_cast<double>(mem_total.m) *
                                       static_cast<double>(k + n));
  for (const auto& g : groups) {
    if (g.m > 0) {
      bytes += bytes_per_element_ * static_cast<double>(k) *
               static_cast<double>(n);
    }
  }
  const double share =
      gpu_.hbm_bandwidth_bytes_per_us *
      (static_cast<double>(sms) / static_cast<double>(gpu_.num_sms));
  return std::max(compute, bytes / share);
}

}  // namespace comet
