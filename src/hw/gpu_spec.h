// Hardware descriptions for the simulated clusters.
//
// The paper evaluates on two testbeds: 8x NVIDIA H800 connected with NVLink
// and 8x NVIDIA L20 connected over PCIe (~25 GB/s measured). We model a GPU
// as an SM pool with aggregate tensor-core throughput plus HBM bandwidth, and
// a node as a set of GPUs joined by homogeneous links. Absolute values are
// datasheet-calibrated; what the reproduction relies on is their *ratios*
// (compute vs. link bandwidth vs. launch overhead), which set where the
// paper's crossovers and optima fall.
#pragma once

#include <string>

namespace comet {

enum class LinkType {
  kNvLink,
  kPcie,
};

std::string LinkTypeName(LinkType type);

// Point-to-point interconnect between two GPUs in a node.
struct LinkSpec {
  LinkType type = LinkType::kNvLink;
  // Wire-rate per-GPU unidirectional bandwidth in bytes/us (all peers
  // combined). GPU-initiated in-kernel transfers (NVSHMEM puts from fused
  // kernels) can approach this rate.
  double bandwidth_bytes_per_us = 0.0;
  // Effective per-port bandwidth a kernel-level NCCL all-to-all achieves:
  // protocol overhead, chunking and stream synchronization keep it well
  // below wire rate at MoE message sizes. This is what the kernel-per-op
  // baselines pay -- and a large part of why fusing communication into the
  // compute kernel wins.
  double collective_bandwidth_bytes_per_us = 0.0;
  // Sustained ring bandwidth for NCCL all-gather / reduce-scatter (large
  // contiguous buffers pipeline much better than all-to-all).
  double ring_bandwidth_bytes_per_us = 0.0;
  // Host/stream synchronization cost per collective call, us.
  double collective_sync_us = 0.0;
  // Fixed per-message latency in us (one put/get of any size pays this once;
  // batched token transfers pay it per batch).
  double latency_us = 0.0;
  // Bandwidth a single communication thread block can sustain with
  // GPU-initiated NVSHMEM-style transfers, bytes/us. The fused kernel's
  // achieved bandwidth is min(nc * per_block, bandwidth_bytes_per_us); this
  // is what makes the division point nc* of Figure 8 non-trivial.
  double per_block_bandwidth_bytes_per_us = 0.0;
  // Same, for scattered token-granular puts/gets to many peers (all-to-all
  // style access from expert parallelism). Lower than the contiguous rate:
  // more address computation and fewer coalesced segments per block, so
  // EP-heavy configurations need more communication blocks to saturate the
  // fabric (paper Figure 8: nc* = 26 at TP=8/EP=1 vs nc* = 46 at TP=4/EP=2).
  double per_block_bandwidth_scattered_bytes_per_us = 0.0;
};

// A single GPU.
struct GpuSpec {
  std::string name;
  int num_sms = 0;
  // Aggregate dense tensor-core throughput at the training dtype (BF16),
  // flops/us.
  double peak_flops_per_us = 0.0;
  // HBM bandwidth, bytes/us (bounds local token movement and memory-bound
  // GEMM tails).
  double hbm_bandwidth_bytes_per_us = 0.0;
  // Host-side cost to launch one kernel, us. Dominates small-M MoE layers in
  // kernel-per-op systems (paper §5.3).
  double kernel_launch_us = 0.0;

  // Per-SM throughput, flops/us.
  double FlopsPerUsPerSm() const;
};

// A homogeneous cluster. Single-node by default (the paper's 8-GPU
// servers); setting `gpus_per_node` < world_size describes the paper's
// production deployments (ten-thousand-GPU clusters, §1): ranks within a
// node talk over `link`, ranks on different nodes over `inter_link`
// (InfiniBand -- lower bandwidth, higher latency).
struct ClusterSpec {
  std::string name;
  int world_size = 0;
  GpuSpec gpu;
  LinkSpec link;  // intra-node fabric
  // 0 means single-node (every rank shares `link`). Otherwise must divide
  // world_size; rank r lives on node r / gpus_per_node.
  int gpus_per_node = 0;
  LinkSpec inter_link{};  // used only when IsMultiNode()

  bool IsMultiNode() const;
  int GpusPerNode() const;  // gpus_per_node, or world_size when single-node
  int NumNodes() const;
  int NodeOfRank(int rank) const;
  bool SameNode(int a, int b) const;
  // The link traffic between ranks `a` and `b` travels over.
  const LinkSpec& LinkBetween(int a, int b) const;
};

// Presets calibrated to the paper's testbeds.
ClusterSpec H800Cluster(int world_size = 8);
ClusterSpec L20Cluster(int world_size = 8);
// Multi-node extension: `num_nodes` H800 nodes of `gpus_per_node` GPUs,
// NVLink inside a node, NDR InfiniBand (400 Gb/s per GPU) across nodes.
ClusterSpec MultiNodeH800Cluster(int num_nodes, int gpus_per_node = 8);

}  // namespace comet
