#include "hw/block_model.h"

#include "util/check.h"

namespace comet {

double CommBlockModel::BandwidthForMessage(double message_bytes) const {
  COMET_CHECK_GT(message_bytes, 0.0);
  COMET_CHECK_GT(peak_bytes_per_us, 0.0);
  return message_bytes /
         (issue_overhead_us + message_bytes / peak_bytes_per_us);
}

double CommBlockModel::MessageBytesForFraction(double fraction) const {
  COMET_CHECK_GT(fraction, 0.0);
  COMET_CHECK_LT(fraction, 1.0);
  // b(s) = f * peak  <=>  s = f/(1-f) * t_issue * peak.
  return fraction / (1.0 - fraction) * issue_overhead_us * peak_bytes_per_us;
}

CommBlockModel CommBlockModelForLink(const LinkSpec& link,
                                     int64_t token_bytes) {
  COMET_CHECK_GT(token_bytes, 0);
  const double scattered = link.per_block_bandwidth_scattered_bytes_per_us;
  const double contiguous = link.per_block_bandwidth_bytes_per_us;
  COMET_CHECK_GT(scattered, 0.0);
  COMET_CHECK_GT(contiguous, scattered)
      << "contiguous per-block rate must exceed the scattered rate";
  CommBlockModel model;
  // The contiguous rate is the large-message asymptote; solve the issue
  // overhead from the scattered rate at one token per message:
  //   scattered = s / (t + s/peak)  =>  t = s * (1/scattered - 1/peak).
  model.peak_bytes_per_us = contiguous;
  model.issue_overhead_us = static_cast<double>(token_bytes) *
                            (1.0 / scattered - 1.0 / contiguous);
  return model;
}

}  // namespace comet
