// Analytic GEMM / GroupGEMM cost model.
//
// High-performance GEMM kernels process the output in BLOCK_M x BLOCK_N tiles
// (128x128 by default, matching the CUTLASS configuration the paper uses).
// The model charges:
//   * tile time   = 2*tm*tn*K flops at the per-SM sustained rate, discounted
//                   by a K-dependent efficiency (small K per rank -- i.e.
//                   large TP -- lowers arithmetic intensity),
//   * wave count  = ceil(tiles / SMs-used): wave quantization makes small
//                   GEMMs waste most of a wave, which is exactly the paper's
//                   Figure 1(b) observation that partitioned experts take
//                   t1 + t2 > t, and Figure 12's degradation at large TP,
//   * roofline    = a memory-bandwidth floor for memory-bound shapes.
//
// The same tile time feeds the fused-kernel simulator, so a GEMM timed as a
// monolithic kernel and the identical GEMM timed tile-by-tile in a fused
// kernel agree by construction (thread-block specialization keeps compute
// blocks unmodified -- paper §3.2.1).
#pragma once

#include <cstdint>
#include <vector>

#include "hw/gpu_spec.h"

namespace comet {

struct GemmShape {
  int64_t m = 0;
  int64_t n = 0;
  int64_t k = 0;

  double Flops() const { return 2.0 * static_cast<double>(m) *
                                static_cast<double>(n) *
                                static_cast<double>(k); }
};

class GemmCostModel {
 public:
  // `bytes_per_element` is the logical training dtype (2 for BF16).
  GemmCostModel(GpuSpec gpu, int tile_m = 128, int tile_n = 128,
                double base_efficiency = 0.85, double bytes_per_element = 2.0);

  int tile_m() const { return tile_m_; }
  int tile_n() const { return tile_n_; }

  // Sustained time for ONE output tile with reduction depth k, on one SM,
  // at the model's native tile shape.
  double TileTimeUs(int64_t k) const;

  // Same for an arbitrary tile_m x tile_n tile. Smaller tiles lose MMA/TMA
  // pipeline efficiency (fixed per-tile prologue/epilogue, partial tensor
  // core fragments): this is the paper's §3.1.2 observation that splitting
  // the shared tensor "into individual rows or columns ... results in low
  // computational efficiency", and what makes the decomposition granularity
  // a real trade-off rather than finer-is-always-better.
  double TileTimeUs(int64_t k, int64_t tile_m, int64_t tile_n) const;

  // Efficiency factor in (0, 1] of a tm x tn tile relative to the native
  // shape; 1 at/above the native shape, falling toward 0 for 1-element
  // tiles. Exposed for tests and the granularity ablation.
  double TileShapeEfficiency(int64_t tile_m, int64_t tile_n) const;

  // Number of output tiles of a GEMM.
  int64_t NumTiles(const GemmShape& shape) const;

  // Whole-kernel time on `sms` SMs (wave-quantized, roofline-floored).
  // Shapes with m == 0 cost zero.
  double TimeUs(const GemmShape& shape, int sms) const;

  // GroupGEMM over per-expert shapes sharing one kernel: tiles from all
  // groups are pooled into waves. All groups must share n and k.
  double GroupTimeUs(const std::vector<GemmShape>& groups, int sms) const;

  // Efficiency factor in (0, 1]: ratio of sustained to ideal flops for a
  // given reduction depth. Exposed for tests and for the TE baseline which
  // applies a different curve.
  double KEfficiency(int64_t k) const;

 private:
  double MemoryFloorUs(const GemmShape& shape, int sms) const;

  GpuSpec gpu_;
  int tile_m_;
  int tile_n_;
  double base_efficiency_;
  double bytes_per_element_;
};

}  // namespace comet
