// Non-owning callable reference, the allocation-free cousin of
// std::function.
//
// The thread pool and rank group run caller-provided callables whose
// lifetime always spans the parallel region (the caller blocks until every
// chunk retires). std::function is the wrong vehicle for that: any capture
// list larger than two pointers spills to the heap, which puts an
// allocation on the hottest path in the repo -- once per parallel region,
// thousands of times per serving iteration. FunctionRef stores exactly
// {object pointer, trampoline pointer}; construction from a lambda is free
// and can never allocate.
//
// The price is the usual one: a FunctionRef must not outlive the callable
// it refers to. Every use in this codebase is a downward call (the region
// completes before the callable's scope ends), which is the only pattern
// this type is meant for.
#pragma once

#include <type_traits>
#include <utility>

namespace comet {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  FunctionRef() = default;

  // Implicit by design (mirrors std::function at call sites): any callable
  // invocable with (Args...) -> R binds directly.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& f)  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(static_cast<const void*>(&f))),
        call_(&Trampoline<std::remove_reference_t<F>>) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

  explicit operator bool() const { return call_ != nullptr; }

 private:
  template <typename F>
  static R Trampoline(void* obj, Args... args) {
    return (*static_cast<F*>(obj))(std::forward<Args>(args)...);
  }

  void* obj_ = nullptr;
  R (*call_)(void*, Args...) = nullptr;
};

}  // namespace comet
