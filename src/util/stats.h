// Summary statistics used by the benchmark harnesses and the adaptive
// profiler: online mean/variance (Welford), percentiles over stored samples,
// and geometric-mean speedup aggregation as reported in the paper's §5.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace comet {

// Online mean/variance accumulator (Welford's algorithm). O(1) memory.
class OnlineStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return mean_; }
  // Population variance/std (divide by N). Zero when count() < 1.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Sample container with percentile queries. Stores all samples.
class SampleSet {
 public:
  void Add(double x);
  size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double Mean() const;
  double Stddev() const;  // population stddev
  double Min() const;
  double Max() const;
  // Linear-interpolated percentile, p in [0, 100]. Requires non-empty.
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }
  // Exact nearest-rank percentile (see PercentileNearestRank below).
  double PercentileExact(double p) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  void EnsureSorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

// Fixed-bucket log2 histogram: 64 buckets covering the full useful double
// range with O(1) memory and no per-sample allocation, plus an EXACT count
// and sum (the bucketing only coarsens percentiles, never totals).
//
// Bucket layout: bucket 0 holds v <= 1 (including zero and negatives);
// bucket i in [1, 62] holds 2^(i-1) < v <= 2^i; bucket 63 is the overflow
// bucket (v > 2^62, including +inf). Upper bounds are exact powers of two,
// so BucketIndex is pure integer bit arithmetic -- no libm on the hot path.
//
// This is the one histogram implementation in the repo: the telemetry
// registry's atomic histograms snapshot into a Histogram so percentile math
// exists exactly once (see src/obs/metrics.h).
class Histogram {
 public:
  static constexpr size_t kBuckets = 64;

  // Bucket that `v` falls into (NaN maps to bucket 0 alongside <=1 values).
  static size_t BucketIndex(double v);
  // Inclusive upper bound of `bucket`: 2^bucket, +inf for the last bucket.
  static double BucketUpperBound(size_t bucket);

  void Add(double v);
  void Clear();

  size_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const;
  uint64_t bucket_count(size_t bucket) const;
  std::span<const uint64_t> buckets() const { return buckets_; }

  // Nearest-rank percentile ESTIMATE: the upper bound of the bucket holding
  // the rank-ceil(p/100*count) sample. Because bucketing is monotonic this
  // always equals BucketUpperBound(BucketIndex(x)) where x is the exact
  // nearest-rank sample (cross-checked brute-force in util_test). Requires
  // non-empty, p in [0, 100].
  double PercentileUpperBound(double p) const;

  // Rebuilds a Histogram from raw bucket counts + exact sum -- the
  // telemetry registry snapshot path.
  static Histogram FromBuckets(std::span<const uint64_t> buckets, double sum);

 private:
  std::array<uint64_t, kBuckets> buckets_{};
  size_t count_ = 0;
  double sum_ = 0.0;
};

// Exact nearest-rank percentile: the smallest sample x such that at least
// ceil(p/100 * n) of the samples are <= x (p == 0 returns the minimum).
// Unlike SampleSet::Percentile it never interpolates -- the result is always
// a value that actually occurred, which keeps aggregated latency metrics
// bit-reproducible across runs (the serving plane's determinism contract
// extends to its reported percentiles). Requires non-empty, p in [0, 100].
double PercentileNearestRank(std::span<const double> values, double p);

// p50/p95/p99 reduction of a latency sample set (nearest-rank, so the
// summary of a deterministic simulated-clock run is itself deterministic).
// All fields are 0 for an empty input.
struct LatencySummary {
  size_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

LatencySummary SummarizeLatency(std::span<const double> values);

// Geometric mean of a set of positive ratios; the paper's "1.71x average
// speedup" style aggregate. Requires all values > 0.
double GeometricMean(const std::vector<double>& values);

// Population standard deviation of a vector (used to report achieved expert
// load std in Figure 14 workloads).
double PopulationStddev(const std::vector<double>& values);

}  // namespace comet
