// Summary statistics used by the benchmark harnesses and the adaptive
// profiler: online mean/variance (Welford), percentiles over stored samples,
// and geometric-mean speedup aggregation as reported in the paper's §5.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace comet {

// Online mean/variance accumulator (Welford's algorithm). O(1) memory.
class OnlineStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return mean_; }
  // Population variance/std (divide by N). Zero when count() < 1.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Sample container with percentile queries. Stores all samples.
class SampleSet {
 public:
  void Add(double x);
  size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double Mean() const;
  double Stddev() const;  // population stddev
  double Min() const;
  double Max() const;
  // Linear-interpolated percentile, p in [0, 100]. Requires non-empty.
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }
  // Exact nearest-rank percentile (see PercentileNearestRank below).
  double PercentileExact(double p) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  void EnsureSorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

// Exact nearest-rank percentile: the smallest sample x such that at least
// ceil(p/100 * n) of the samples are <= x (p == 0 returns the minimum).
// Unlike SampleSet::Percentile it never interpolates -- the result is always
// a value that actually occurred, which keeps aggregated latency metrics
// bit-reproducible across runs (the serving plane's determinism contract
// extends to its reported percentiles). Requires non-empty, p in [0, 100].
double PercentileNearestRank(std::span<const double> values, double p);

// p50/p95/p99 reduction of a latency sample set (nearest-rank, so the
// summary of a deterministic simulated-clock run is itself deterministic).
// All fields are 0 for an empty input.
struct LatencySummary {
  size_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

LatencySummary SummarizeLatency(std::span<const double> values);

// Geometric mean of a set of positive ratios; the paper's "1.71x average
// speedup" style aggregate. Requires all values > 0.
double GeometricMean(const std::vector<double>& values);

// Population standard deviation of a vector (used to report achieved expert
// load std in Figure 14 workloads).
double PopulationStddev(const std::vector<double>& values);

}  // namespace comet
