// Deterministic pseudo-random number generation for workload synthesis.
//
// All randomness in the repository flows through comet::Rng so that every
// experiment (routing tables, token values, imbalance patterns) is exactly
// reproducible from a seed. The core generator is xoshiro256**, seeded via
// splitmix64 as recommended by its authors; distribution helpers cover the
// cases the benches need (uniform, normal, categorical, Dirichlet-like
// expert-load vectors with a target standard deviation).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace comet {

// xoshiro256** generator with distribution helpers. Copyable; copies diverge
// independently from the point of the copy.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedULL);

  // Raw 64 random bits.
  uint64_t NextU64();

  // Uniform in [0, 1).
  double NextDouble();

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform real in [lo, hi).
  double Uniform(double lo, double hi);

  // Standard normal via Box-Muller (cached second value).
  double Normal(double mean = 0.0, double stddev = 1.0);

  // Samples an index in [0, weights.size()) proportionally to weights.
  // Requires at least one strictly positive weight.
  size_t Categorical(const std::vector<double>& weights);

  // Produces a probability vector of length n whose standard deviation
  // (treating the entries as a population) is approximately `target_std`.
  // Used to reproduce the paper's Figure 14 x-axis: the std of the expert
  // load distribution. target_std == 0 yields the uniform vector 1/n.
  std::vector<double> LoadVectorWithStd(size_t n, double target_std);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace comet
