// Minimal shared JSON emission helpers.
//
// One escaping/number-formatting implementation serves every JSON producer
// in the repo -- the simulator's Chrome-trace export (sim/trace_export) and
// the telemetry plane's serving exporters (src/obs/exporters) -- so the two
// can never drift on how a quote, control character, or non-finite double is
// rendered. These are end-of-run emitters, not hot-path code: they may
// allocate freely.
#pragma once

#include <string>
#include <string_view>

namespace comet {

// Appends `s` to `out` with JSON string escaping: quote, backslash, newline
// and tab get two-character escapes; any other control character below 0x20
// becomes \u00XX. All other bytes pass through unchanged.
void AppendJsonEscaped(std::string& out, std::string_view s);

// Convenience form of AppendJsonEscaped returning a fresh string.
std::string JsonEscape(std::string_view s);

// Appends `v` as a JSON number token with up to 12 significant digits
// (%.12g); non-finite values become the token `null` (JSON has no inf/nan).
// Deterministic: identical doubles always render to identical bytes.
void AppendJsonNumber(std::string& out, double v);

}  // namespace comet
