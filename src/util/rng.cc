#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace comet {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  COMET_CHECK_LE(lo, hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) {  // full 64-bit range
    return static_cast<int64_t>(NextU64());
  }
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t v;
  do {
    v = NextU64();
  } while (v >= limit);
  return lo + static_cast<int64_t>(v % range);
}

double Rng::Uniform(double lo, double hi) {
  COMET_CHECK_LE(lo, hi);
  return lo + (hi - lo) * NextDouble();
}

double Rng::Normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  COMET_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    COMET_CHECK_GE(w, 0.0);
    total += w;
  }
  COMET_CHECK_GT(total, 0.0) << "categorical weights must not all be zero";
  double r = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) {
      return i;
    }
  }
  return weights.size() - 1;  // numeric edge: r landed exactly on total
}

std::vector<double> Rng::LoadVectorWithStd(size_t n, double target_std) {
  COMET_CHECK_GT(n, 0u);
  COMET_CHECK_GE(target_std, 0.0);
  const double mean = 1.0 / static_cast<double>(n);
  std::vector<double> v(n, mean);
  if (target_std == 0.0 || n == 1) {
    return v;
  }
  // Start from a random direction orthogonal to the all-ones vector, then
  // scale it to the requested population std and clamp to non-negative.
  std::vector<double> dir(n);
  double dir_mean = 0.0;
  for (auto& d : dir) {
    d = Normal();
    dir_mean += d;
  }
  dir_mean /= static_cast<double>(n);
  double norm2 = 0.0;
  for (auto& d : dir) {
    d -= dir_mean;  // orthogonal to ones => perturbation preserves the sum
    norm2 += d * d;
  }
  const double dir_std = std::sqrt(norm2 / static_cast<double>(n));
  if (dir_std == 0.0) {
    return v;
  }
  for (size_t i = 0; i < n; ++i) {
    v[i] = mean + dir[i] / dir_std * target_std;
  }
  // Clamp and renormalize; for the std ranges the paper sweeps (<= 0.05 with
  // n = 8 experts) clamping rarely triggers, so the resulting std stays close
  // to the target.
  double sum = 0.0;
  for (auto& x : v) {
    x = std::max(x, 0.0);
    sum += x;
  }
  for (auto& x : v) {
    x /= sum;
  }
  return v;
}

}  // namespace comet
