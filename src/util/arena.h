// Preallocated allocators for the serving hot path.
//
// The zero-allocation contract (docs/ARCHITECTURE.md, "The allocation
// plane") splits every serving-plane container into two phases: a warm-up
// phase where capacity is established (BeginRun / ReserveRun / first
// iterations at a new shape) and a steady state where capacity is only
// reused. Two primitives make that split explicit:
//
//  * MonotonicArena -- one upfront block, bump-pointer Allocate, O(1)
//    Reset. For per-run scratch whose total footprint is known at
//    ReserveRun time. Exhaustion is a programming error (the reservation
//    bound was wrong) and throws CheckError loudly rather than falling
//    back to the heap -- a silent fallback would turn the zero-allocation
//    guarantee into a probabilistic one.
//
//  * FixedPool<T> -- a free-list over `capacity` default-constructed
//    objects. Acquire/Release never touch the heap; objects keep their
//    internal buffers (a released LiveRequest keeps its reserved prompt
//    tensor), which is exactly what makes admission allocation-free after
//    warm-up. Exhaustion throws CheckError.
//
// Neither type is thread-safe: both are owned by single-threaded control
// planes (the server's run state, the executor). The data plane below them
// never allocates at all.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/check.h"

namespace comet::util {

class MonotonicArena {
 public:
  MonotonicArena() = default;
  explicit MonotonicArena(size_t capacity_bytes) { Reserve(capacity_bytes); }

  // Replaces the block (allocates; warm-up only). Resets the bump pointer.
  void Reserve(size_t capacity_bytes) {
    block_ = std::make_unique<std::byte[]>(capacity_bytes);
    capacity_ = capacity_bytes;
    used_ = 0;
  }

  // Bump-allocates `bytes` aligned to `align`. Throws CheckError on
  // exhaustion: the caller's reservation bound was wrong.
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t)) {
    COMET_CHECK(align != 0 && (align & (align - 1)) == 0)
        << "alignment must be a power of two, got " << align;
    const size_t aligned = (used_ + align - 1) & ~(align - 1);
    COMET_CHECK_LE(aligned + bytes, capacity_)
        << "MonotonicArena exhausted: need " << bytes << " bytes at offset "
        << aligned << ", capacity " << capacity_
        << " -- the ReserveRun bound is wrong";
    void* p = block_.get() + aligned;
    used_ = aligned + bytes;
    return p;
  }

  // Typed array of default-constructible, trivially-destructible T (the
  // arena never runs destructors).
  template <typename T>
  T* AllocateArray(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "MonotonicArena never runs destructors");
    T* p = static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
    for (size_t i = 0; i < n; ++i) {
      new (p + i) T();
    }
    return p;
  }

  // O(1): forgets every allocation, keeps the block.
  void Reset() { used_ = 0; }

  size_t used() const { return used_; }
  size_t capacity() const { return capacity_; }

 private:
  std::unique_ptr<std::byte[]> block_;
  size_t capacity_ = 0;
  size_t used_ = 0;
};

template <typename T>
class FixedPool {
 public:
  FixedPool() = default;
  explicit FixedPool(size_t capacity) { Reserve(capacity); }

  // Grows the pool to `capacity` objects (allocates; warm-up only).
  // Existing acquired objects stay valid: storage slots are stable.
  void Reserve(size_t capacity) {
    while (storage_.size() < capacity) {
      storage_.push_back(std::make_unique<T>());
      free_.reserve(capacity);
      free_.push_back(storage_.back().get());
    }
  }

  // Pops an object off the free list. The object is in whatever state its
  // last user left it (internal capacity intact); callers re-initialize the
  // fields they use. Throws CheckError when exhausted.
  T* Acquire() {
    COMET_CHECK(!free_.empty())
        << "FixedPool exhausted: all " << storage_.size()
        << " objects are live -- the reservation bound is wrong";
    T* p = free_.back();
    free_.pop_back();
    return p;
  }

  // Returns an object to the free list. Must be a pointer obtained from
  // Acquire() on this pool, released at most once.
  void Release(T* p) {
    COMET_CHECK(p != nullptr);
    COMET_CHECK_LT(free_.size(), storage_.size())
        << "FixedPool::Release with no object outstanding (double release?)";
    free_.push_back(p);
  }

  size_t capacity() const { return storage_.size(); }
  size_t available() const { return free_.size(); }
  size_t outstanding() const { return storage_.size() - free_.size(); }

 private:
  std::vector<std::unique_ptr<T>> storage_;  // stable addresses
  std::vector<T*> free_;
};

}  // namespace comet::util
