// Small string helpers shared across modules (no dependency on anything).
#pragma once

#include <string>
#include <vector>

namespace comet {

// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(const std::string& s, char delim);

// Joins `parts` with `delim`.
std::string Join(const std::vector<std::string>& parts, const std::string& delim);

// True if `s` starts with / ends with the given prefix/suffix.
bool StartsWith(const std::string& s, const std::string& prefix);
bool EndsWith(const std::string& s, const std::string& suffix);

// Strips ASCII whitespace from both ends.
std::string Trim(const std::string& s);

}  // namespace comet
