#include "util/thread_pool.h"

#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace comet {
namespace {

// Set while a pool worker (or a thread executing a chunk inline on behalf of
// a ParallelFor) is running task code; nested ParallelFor calls detect it
// and degrade to inline execution instead of deadlocking on a full queue.
thread_local bool t_inside_parallel_region = false;

// Same bound comet_bench --threads enforces: keeps the long->int cast from
// silently truncating (COMET_THREADS=2^32 would read as 0) and keeps
// ThreadPool from attempting hundreds of thousands of std::thread spawns
// (which throw system_error and terminate the process).
constexpr long kMaxThreads = 4096;

int DefaultThreadCount() {
  if (const char* env = std::getenv("COMET_THREADS")) {
    char* end = nullptr;
    const long n = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && n >= 1) {
      return static_cast<int>(n < kMaxThreads ? n : kMaxThreads);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace

struct ThreadPool::Impl {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<std::function<void()>> queue;
  std::vector<std::thread> workers;
  bool stopping = false;

  explicit Impl(int worker_count) {
    workers.reserve(static_cast<size_t>(worker_count));
    for (int i = 0; i < worker_count; ++i) {
      workers.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~Impl() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      stopping = true;
    }
    cv.notify_all();
    for (std::thread& t : workers) {
      t.join();
    }
  }

  void WorkerLoop() {
    t_inside_parallel_region = true;  // workers always run task code
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [this] { return stopping || !queue.empty(); });
        if (queue.empty()) {
          return;  // stopping and drained
        }
        task = std::move(queue.front());
        queue.pop_front();
      }
      task();
    }
  }

  void Submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      queue.push_back(std::move(task));
    }
    cv.notify_one();
  }
};

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(num_threads < 1 ? 1 : num_threads) {
  if (num_threads_ > 1) {
    impl_ = std::make_unique<Impl>(num_threads_ - 1);
  }
}

ThreadPool::~ThreadPool() = default;

void ThreadPool::ParallelForChunks(
    int64_t begin, int64_t end, int64_t grain,
    const std::function<void(int64_t, int64_t)>& fn, int max_chunks) {
  if (begin >= end) {
    return;
  }
  if (grain < 1) {
    grain = 1;
  }
  const int64_t range = end - begin;
  int64_t chunks = num_threads_;
  if (max_chunks > 0 && max_chunks < chunks) {
    chunks = max_chunks;
  }
  // Floor division: every chunk gets at least `grain` indices, as the
  // header promises (ceil would allow chunks just over grain/2).
  const int64_t by_grain = range / grain > 0 ? range / grain : 1;
  if (by_grain < chunks) {
    chunks = by_grain;
  }
  if (chunks <= 1 || impl_ == nullptr || t_inside_parallel_region) {
    // Serial / nested path: same chunk boundaries would be produced, and the
    // body observes the identical index order.
    const bool was_inside = t_inside_parallel_region;
    t_inside_parallel_region = true;
    try {
      fn(begin, end);
    } catch (...) {
      t_inside_parallel_region = was_inside;
      throw;
    }
    t_inside_parallel_region = was_inside;
    return;
  }

  // Static partition: chunk c covers base indices; the first `rem` chunks
  // take one extra. Depends only on (range, chunks) -- deterministic.
  const int64_t base = range / chunks;
  const int64_t rem = range % chunks;

  struct Shared {
    std::mutex mutex;
    std::condition_variable done_cv;
    int64_t remaining = 0;
    std::vector<std::exception_ptr> errors;
  } shared;
  shared.remaining = chunks;
  shared.errors.assign(static_cast<size_t>(chunks), nullptr);

  auto run_chunk = [&](int64_t c) {
    int64_t chunk_begin = begin + c * base + (c < rem ? c : rem);
    int64_t chunk_end = chunk_begin + base + (c < rem ? 1 : 0);
    try {
      fn(chunk_begin, chunk_end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(shared.mutex);
      shared.errors[static_cast<size_t>(c)] = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(shared.mutex);
      if (--shared.remaining == 0) {
        shared.done_cv.notify_all();
      }
    }
  };

  for (int64_t c = 1; c < chunks; ++c) {
    impl_->Submit([&run_chunk, c] {
      run_chunk(c);
    });
  }
  // The calling thread takes chunk 0 (and is inside a parallel region while
  // doing so, so nested ParallelFor calls inline).
  {
    const bool was_inside = t_inside_parallel_region;
    t_inside_parallel_region = true;
    run_chunk(0);
    t_inside_parallel_region = was_inside;
  }
  {
    std::unique_lock<std::mutex> lock(shared.mutex);
    shared.done_cv.wait(lock, [&shared] { return shared.remaining == 0; });
  }
  for (const std::exception_ptr& err : shared.errors) {
    if (err) {
      std::rethrow_exception(err);
    }
  }
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end, int64_t grain,
                             const std::function<void(int64_t)>& fn,
                             int max_chunks) {
  ParallelForChunks(
      begin, end, grain,
      [&fn](int64_t chunk_begin, int64_t chunk_end) {
        for (int64_t i = chunk_begin; i < chunk_end; ++i) {
          fn(i);
        }
      },
      max_chunks);
}

namespace {

// Per-thread cap installed by ScopedThreadLimit; 0 = uncapped.
thread_local int t_thread_limit = 0;

int CombineLimits(int a, int b) {
  if (a <= 0) {
    return b;
  }
  if (b <= 0) {
    return a;
  }
  return a < b ? a : b;
}

// Slot + creation lock are intentionally leaked: pool workers may still be
// parked in the queue at process exit, and running their destructor from a
// static-destruction context would join against dead TLS.
std::mutex& GlobalPoolMutex() {
  static std::mutex* m = new std::mutex();
  return *m;
}

std::unique_ptr<ThreadPool>& GlobalPoolSlot() {
  static std::unique_ptr<ThreadPool>* slot = new std::unique_ptr<ThreadPool>();
  return *slot;
}

}  // namespace

ThreadPool& GlobalThreadPool() {
  std::lock_guard<std::mutex> lock(GlobalPoolMutex());
  auto& slot = GlobalPoolSlot();
  if (slot == nullptr) {
    slot = std::make_unique<ThreadPool>(DefaultThreadCount());
  }
  return *slot;
}

int GlobalThreadCount() { return GlobalThreadPool().num_threads(); }

void SetGlobalThreadCount(int n) {
  auto fresh = std::make_unique<ThreadPool>(n < 1 ? 1 : n);
  std::lock_guard<std::mutex> lock(GlobalPoolMutex());
  // The old pool (if any) joins its workers here; callers must not hold
  // in-flight ParallelFor regions on it (see header).
  GlobalPoolSlot() = std::move(fresh);
}

int CurrentThreadLimit() { return t_thread_limit; }

ScopedThreadLimit::ScopedThreadLimit(int max_threads)
    : previous_(t_thread_limit) {
  t_thread_limit = CombineLimits(previous_, max_threads);
}

ScopedThreadLimit::~ScopedThreadLimit() { t_thread_limit = previous_; }

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t)>& fn, int max_threads) {
  GlobalThreadPool().ParallelFor(begin, end, grain, fn,
                                 CombineLimits(t_thread_limit, max_threads));
}

void ParallelForChunks(int64_t begin, int64_t end, int64_t grain,
                       const std::function<void(int64_t, int64_t)>& fn,
                       int max_threads) {
  GlobalThreadPool().ParallelForChunks(
      begin, end, grain, fn, CombineLimits(t_thread_limit, max_threads));
}

}  // namespace comet
