#include "util/thread_pool.h"

#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace comet {
namespace {

// Set while a pool worker (or a thread executing a chunk inline on behalf of
// a ParallelFor) is running task code; nested ParallelFor calls detect it
// and degrade to inline execution instead of deadlocking on a full queue.
thread_local bool t_inside_parallel_region = false;

// Same bound comet_bench --threads enforces: keeps the long->int cast from
// silently truncating (COMET_THREADS=2^32 would read as 0) and keeps
// ThreadPool from attempting hundreds of thousands of std::thread spawns
// (which throw system_error and terminate the process).
constexpr long kMaxThreads = 4096;

int DefaultThreadCount() {
  if (const char* env = std::getenv("COMET_THREADS")) {
    char* end = nullptr;
    const long n = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && n >= 1) {
      return static_cast<int>(n < kMaxThreads ? n : kMaxThreads);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace

struct ThreadPool::Impl {
  // POD task: trampoline + context + one integer argument. Tasks must not
  // throw out of fn (the trampolines catch internally), and the ctx object
  // must outlive the task -- both guaranteed because every submitter blocks
  // until its whole region retired.
  struct Task {
    void (*fn)(void*, int64_t) = nullptr;
    void* ctx = nullptr;
    int64_t arg = 0;
  };

  // Fixed ring: Submit blocks when full instead of growing. Safe from
  // deadlock because tasks never submit tasks (nested regions run inline),
  // so the workers always drain. 1024 slots is far above the largest chunk
  // fan-out (chunks <= num_threads <= kMaxThreads is capped per region to
  // the worker count anyway).
  static constexpr size_t kRingCapacity = 1024;

  std::mutex mutex;
  std::condition_variable task_cv;   // workers: ring non-empty or stopping
  std::condition_variable space_cv;  // submitters: ring has room
  Task ring[kRingCapacity];
  size_t head = 0;
  size_t count = 0;
  std::vector<std::thread> workers;
  bool stopping = false;

  explicit Impl(int worker_count) {
    workers.reserve(static_cast<size_t>(worker_count));
    for (int i = 0; i < worker_count; ++i) {
      workers.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~Impl() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      stopping = true;
    }
    task_cv.notify_all();
    for (std::thread& t : workers) {
      t.join();
    }
  }

  void WorkerLoop() {
    t_inside_parallel_region = true;  // workers always run task code
    for (;;) {
      Task task;
      {
        std::unique_lock<std::mutex> lock(mutex);
        task_cv.wait(lock, [this] { return stopping || count > 0; });
        if (count == 0) {
          return;  // stopping and drained
        }
        task = ring[head];
        head = (head + 1) % kRingCapacity;
        --count;
        if (count == kRingCapacity - 1) {
          space_cv.notify_all();  // a submitter may be blocked on full
        }
      }
      task.fn(task.ctx, task.arg);
    }
  }

  void Submit(void (*fn)(void*, int64_t), void* ctx, int64_t arg) {
    {
      std::unique_lock<std::mutex> lock(mutex);
      space_cv.wait(lock, [this] { return count < kRingCapacity; });
      ring[(head + count) % kRingCapacity] = Task{fn, ctx, arg};
      ++count;
    }
    task_cv.notify_one();
  }
};

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(num_threads < 1 ? 1 : num_threads) {
  if (num_threads_ > 1) {
    impl_ = std::make_unique<Impl>(num_threads_ - 1);
  }
}

ThreadPool::~ThreadPool() = default;

namespace {

// Shared state of one ParallelForChunks region; lives on the caller's
// stack. Holds the SINGLE winning error: the one from the lowest-numbered
// failing chunk (the order a serial run would have surfaced it).
struct ChunkRegion {
  FunctionRef<void(int64_t, int64_t)> fn;
  int64_t begin = 0;
  int64_t base = 0;
  int64_t rem = 0;
  std::mutex mutex;
  std::condition_variable done_cv;
  int64_t remaining = 0;
  std::exception_ptr error;
  int64_t error_chunk = INT64_MAX;

  void RunChunk(int64_t c) {
    const int64_t chunk_begin = begin + c * base + (c < rem ? c : rem);
    const int64_t chunk_end = chunk_begin + base + (c < rem ? 1 : 0);
    try {
      fn(chunk_begin, chunk_end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex);
      if (c < error_chunk) {
        error_chunk = c;
        error = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (--remaining == 0) {
        done_cv.notify_all();
      }
    }
  }

  static void Trampoline(void* ctx, int64_t c) {
    static_cast<ChunkRegion*>(ctx)->RunChunk(c);
  }
};

}  // namespace

void ThreadPool::ParallelForChunks(int64_t begin, int64_t end, int64_t grain,
                                   FunctionRef<void(int64_t, int64_t)> fn,
                                   int max_chunks) {
  if (begin >= end) {
    return;
  }
  if (grain < 1) {
    grain = 1;
  }
  const int64_t range = end - begin;
  int64_t chunks = num_threads_;
  if (max_chunks > 0 && max_chunks < chunks) {
    chunks = max_chunks;
  }
  // Floor division: every chunk gets at least `grain` indices, as the
  // header promises (ceil would allow chunks just over grain/2).
  const int64_t by_grain = range / grain > 0 ? range / grain : 1;
  if (by_grain < chunks) {
    chunks = by_grain;
  }
  if (chunks <= 1 || impl_ == nullptr || t_inside_parallel_region) {
    // Serial / nested path: same chunk boundaries would be produced, and the
    // body observes the identical index order.
    const bool was_inside = t_inside_parallel_region;
    t_inside_parallel_region = true;
    try {
      fn(begin, end);
    } catch (...) {
      t_inside_parallel_region = was_inside;
      throw;
    }
    t_inside_parallel_region = was_inside;
    return;
  }

  // Static partition: chunk c covers base indices; the first `rem` chunks
  // take one extra. Depends only on (range, chunks) -- deterministic.
  ChunkRegion region;
  region.fn = fn;
  region.begin = begin;
  region.base = range / chunks;
  region.rem = range % chunks;
  region.remaining = chunks;

  for (int64_t c = 1; c < chunks; ++c) {
    impl_->Submit(&ChunkRegion::Trampoline, &region, c);
  }
  // The calling thread takes chunk 0 (and is inside a parallel region while
  // doing so, so nested ParallelFor calls inline).
  {
    const bool was_inside = t_inside_parallel_region;
    t_inside_parallel_region = true;
    region.RunChunk(0);
    t_inside_parallel_region = was_inside;
  }
  {
    std::unique_lock<std::mutex> lock(region.mutex);
    region.done_cv.wait(lock, [&region] { return region.remaining == 0; });
  }
  if (region.error) {
    std::rethrow_exception(region.error);
  }
}

namespace {

// Per-index adapter: lives on the caller's stack for the duration of the
// region, so the inner FunctionRef stays valid.
struct IndexBody {
  FunctionRef<void(int64_t)> fn;
  void operator()(int64_t chunk_begin, int64_t chunk_end) const {
    for (int64_t i = chunk_begin; i < chunk_end; ++i) {
      fn(i);
    }
  }
};

// One ForEachWorker sweep: `total` tasks, each claimed by a distinct worker
// (the latch at claim time prevents any worker from taking two).
struct WorkerSweep {
  FunctionRef<void(int)> hook;
  int total = 0;
  std::mutex mutex;
  std::condition_variable cv;
  int claimed = 0;
  int done = 0;
  std::exception_ptr error;

  static void Trampoline(void* ctx, int64_t) {
    static_cast<WorkerSweep*>(ctx)->Run();
  }

  void Run() {
    int index;
    {
      std::unique_lock<std::mutex> lock(mutex);
      index = claimed++;
      if (claimed == total) {
        cv.notify_all();
      } else {
        // Hold this worker until every task is claimed: that is what pins
        // one task to one worker.
        cv.wait(lock, [this] { return claimed == total; });
      }
    }
    try {
      hook(index);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex);
      if (!error) {
        error = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (++done == total) {
        cv.notify_all();
      }
    }
  }
};

}  // namespace

void ThreadPool::ForEachWorker(FunctionRef<void(int)> hook) {
  if (impl_ == nullptr) {
    return;
  }
  WorkerSweep sweep;
  sweep.hook = hook;
  sweep.total = static_cast<int>(impl_->workers.size());
  for (int i = 0; i < sweep.total; ++i) {
    impl_->Submit(&WorkerSweep::Trampoline, &sweep, i);
  }
  {
    std::unique_lock<std::mutex> lock(sweep.mutex);
    sweep.cv.wait(lock, [&sweep] { return sweep.done == sweep.total; });
  }
  if (sweep.error) {
    std::rethrow_exception(sweep.error);
  }
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end, int64_t grain,
                             FunctionRef<void(int64_t)> fn, int max_chunks) {
  const IndexBody body{fn};
  ParallelForChunks(begin, end, grain, body, max_chunks);
}

namespace {

// Per-thread cap installed by ScopedThreadLimit; 0 = uncapped.
thread_local int t_thread_limit = 0;

int CombineLimits(int a, int b) {
  if (a <= 0) {
    return b;
  }
  if (b <= 0) {
    return a;
  }
  return a < b ? a : b;
}

// Slot + creation lock are intentionally leaked: pool workers may still be
// parked in the queue at process exit, and running their destructor from a
// static-destruction context would join against dead TLS.
std::mutex& GlobalPoolMutex() {
  static std::mutex* m = new std::mutex();
  return *m;
}

std::unique_ptr<ThreadPool>& GlobalPoolSlot() {
  static std::unique_ptr<ThreadPool>* slot = new std::unique_ptr<ThreadPool>();
  return *slot;
}

}  // namespace

ThreadPool& GlobalThreadPool() {
  std::lock_guard<std::mutex> lock(GlobalPoolMutex());
  auto& slot = GlobalPoolSlot();
  if (slot == nullptr) {
    slot = std::make_unique<ThreadPool>(DefaultThreadCount());
  }
  return *slot;
}

int GlobalThreadCount() { return GlobalThreadPool().num_threads(); }

void SetGlobalThreadCount(int n) {
  auto fresh = std::make_unique<ThreadPool>(n < 1 ? 1 : n);
  std::lock_guard<std::mutex> lock(GlobalPoolMutex());
  // The old pool (if any) joins its workers here; callers must not hold
  // in-flight ParallelFor regions on it (see header).
  GlobalPoolSlot() = std::move(fresh);
}

int CurrentThreadLimit() { return t_thread_limit; }

ScopedThreadLimit::ScopedThreadLimit(int max_threads)
    : previous_(t_thread_limit) {
  t_thread_limit = CombineLimits(previous_, max_threads);
}

ScopedThreadLimit::~ScopedThreadLimit() { t_thread_limit = previous_; }

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 FunctionRef<void(int64_t)> fn, int max_threads) {
  GlobalThreadPool().ParallelFor(begin, end, grain, fn,
                                 CombineLimits(t_thread_limit, max_threads));
}

void ParallelForChunks(int64_t begin, int64_t end, int64_t grain,
                       FunctionRef<void(int64_t, int64_t)> fn,
                       int max_threads) {
  GlobalThreadPool().ParallelForChunks(
      begin, end, grain, fn, CombineLimits(t_thread_limit, max_threads));
}

}  // namespace comet
