#include "util/check.h"

namespace comet::internal {

void FailCheck(const char* file, int line, const char* expr,
               const std::string& extra) {
  std::ostringstream os;
  os << "COMET_CHECK failed at " << file << ":" << line << ": " << expr;
  if (!extra.empty()) {
    os << " " << extra;
  }
  throw CheckError(os.str());
}

}  // namespace comet::internal
