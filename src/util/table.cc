#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/check.h"

namespace comet {

AsciiTable::AsciiTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  COMET_CHECK(!headers_.empty());
}

void AsciiTable::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string AsciiTable::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::ostringstream os;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) {
        os << " | ";
      }
      os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    return os.str();
  };

  std::ostringstream out;
  out << render_row(headers_) << "\n";
  for (size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) {
      out << "-+-";
    }
    out << std::string(widths[c], '-');
  }
  out << "\n";
  for (const auto& row : rows_) {
    out << render_row(row) << "\n";
  }
  return out.str();
}

std::string FormatDouble(double value, int digits) {
  COMET_CHECK_GE(digits, 0);
  COMET_CHECK_LE(digits, 17);
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  return os.str();
}

std::string FormatUsAsMs(double us, int digits) {
  return FormatDouble(us / 1000.0, digits);
}

std::string FormatSpeedup(double ratio, int digits) {
  return FormatDouble(ratio, digits) + "x";
}

std::string FormatPercent(double fraction, int digits) {
  return FormatDouble(fraction * 100.0, digits) + "%";
}

}  // namespace comet
