// Counting operator new/delete interposer. See alloc_counter.h for the
// contract. This translation unit is only linked into binaries that
// reference AllocCounter (the archive member is pulled by symbol
// resolution), so ordinary binaries keep the default allocator.
#include "util/alloc_counter.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>
#include <unistd.h>

#if defined(__GLIBC__)
#include <execinfo.h>
#endif

namespace comet::util {
namespace {

// All state is constant-initialized: the interposed operators can run
// before main (static constructors of other TUs) and on any thread.
std::atomic<bool> g_enabled{false};
std::atomic<bool> g_trap_checked{false};
std::atomic<bool> g_trap{false};
std::atomic<uint64_t> g_allocs{0};
std::atomic<uint64_t> g_frees{0};
std::atomic<uint64_t> g_bytes{0};

thread_local uint64_t t_allocs = 0;
thread_local uint64_t t_frees = 0;
thread_local uint64_t t_bytes = 0;

bool TrapRequested() {
  // getenv on first use only; the result is latched. std::getenv does not
  // allocate.
  if (!g_trap_checked.load(std::memory_order_acquire)) {
    const char* env = std::getenv("COMET_ALLOC_TRAP");
    g_trap.store(env != nullptr && env[0] == '1', std::memory_order_relaxed);
    g_trap_checked.store(true, std::memory_order_release);
  }
  return g_trap.load(std::memory_order_relaxed);
}

void MaybeTrap() {
#if defined(__GLIBC__)
  if (!TrapRequested()) {
    return;
  }
  // First counted allocation only: name the call site. backtrace_symbols_fd
  // writes straight to the fd without allocating.
  static std::atomic<bool> fired{false};
  bool expected = false;
  if (fired.compare_exchange_strong(expected, true)) {
    const char msg[] = "[alloc_counter] allocation inside counted window:\n";
    (void)!write(STDERR_FILENO, msg, sizeof(msg) - 1);
    void* frames[32];
    const int n = backtrace(frames, 32);
    backtrace_symbols_fd(frames, n, STDERR_FILENO);
  }
#endif
}

void CountAlloc(size_t size) {
  if (!g_enabled.load(std::memory_order_relaxed)) {
    return;
  }
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  ++t_allocs;
  t_bytes += size;
  MaybeTrap();
}

void CountFree() {
  if (!g_enabled.load(std::memory_order_relaxed)) {
    return;
  }
  g_frees.fetch_add(1, std::memory_order_relaxed);
  ++t_frees;
}

void* AllocOrThrow(size_t size) {
  CountAlloc(size);
  if (size == 0) {
    size = 1;
  }
  void* p = std::malloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* AllocAligned(size_t size, size_t align) {
  CountAlloc(size);
  void* p = std::aligned_alloc(align, (size + align - 1) / align * align);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace

void AllocCounter::Enable() {
  g_allocs.store(0, std::memory_order_relaxed);
  g_frees.store(0, std::memory_order_relaxed);
  g_bytes.store(0, std::memory_order_relaxed);
  t_allocs = t_frees = t_bytes = 0;
  g_enabled.store(true, std::memory_order_release);
}

void AllocCounter::Disable() {
  g_enabled.store(false, std::memory_order_release);
}

bool AllocCounter::enabled() {
  return g_enabled.load(std::memory_order_relaxed);
}

AllocStats AllocCounter::Global() {
  return AllocStats{g_allocs.load(std::memory_order_relaxed),
                    g_frees.load(std::memory_order_relaxed),
                    g_bytes.load(std::memory_order_relaxed)};
}

AllocStats AllocCounter::Thread() {
  return AllocStats{t_allocs, t_frees, t_bytes};
}

bool AllocCounter::Interposed() {
  // Self-test: a real allocation while counting must move the counter.
  // Saves and restores the window so callers can probe at any time.
  const bool was_enabled = enabled();
  const AllocStats saved = Global();
  const uint64_t saved_t_allocs = t_allocs;
  const uint64_t saved_t_frees = t_frees;
  const uint64_t saved_t_bytes = t_bytes;
  g_enabled.store(true, std::memory_order_release);
  const uint64_t before = g_allocs.load(std::memory_order_relaxed);
  volatile char* probe = new char[8];
  const uint64_t after = g_allocs.load(std::memory_order_relaxed);
  delete[] probe;
  g_allocs.store(saved.allocs, std::memory_order_relaxed);
  g_frees.store(saved.frees, std::memory_order_relaxed);
  g_bytes.store(saved.bytes, std::memory_order_relaxed);
  t_allocs = saved_t_allocs;
  t_frees = saved_t_frees;
  t_bytes = saved_t_bytes;
  g_enabled.store(was_enabled, std::memory_order_release);
  return after == before + 1;
}

}  // namespace comet::util

// ---- global operator new/delete replacements -------------------------------
// Every variant the C++ runtime can emit, forwarded through one counting
// funnel. Sized deletes forward to the unsized ones.

void* operator new(size_t size) { return comet::util::AllocOrThrow(size); }
void* operator new[](size_t size) { return comet::util::AllocOrThrow(size); }

void* operator new(size_t size, const std::nothrow_t&) noexcept {
  comet::util::CountAlloc(size);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](size_t size, const std::nothrow_t&) noexcept {
  comet::util::CountAlloc(size);
  return std::malloc(size == 0 ? 1 : size);
}

void* operator new(size_t size, std::align_val_t align) {
  return comet::util::AllocAligned(size, static_cast<size_t>(align));
}
void* operator new[](size_t size, std::align_val_t align) {
  return comet::util::AllocAligned(size, static_cast<size_t>(align));
}

void operator delete(void* p) noexcept {
  comet::util::CountFree();
  std::free(p);
}
void operator delete[](void* p) noexcept {
  comet::util::CountFree();
  std::free(p);
}
void operator delete(void* p, size_t) noexcept { operator delete(p); }
void operator delete[](void* p, size_t) noexcept { operator delete[](p); }
void operator delete(void* p, std::align_val_t) noexcept {
  comet::util::CountFree();
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  comet::util::CountFree();
  std::free(p);
}
void operator delete(void* p, size_t, std::align_val_t) noexcept {
  comet::util::CountFree();
  std::free(p);
}
void operator delete[](void* p, size_t, std::align_val_t) noexcept {
  comet::util::CountFree();
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  comet::util::CountFree();
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  comet::util::CountFree();
  std::free(p);
}
