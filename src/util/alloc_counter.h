// Heap-allocation counting for the zero-allocation regression tier.
//
// The serving plane's contract is that a steady-state StepIteration
// performs ZERO heap allocations (docs/ARCHITECTURE.md, "The allocation
// plane"). Contracts that are not enforced rot, so this header gives tests
// and benches a malloc-counting interposer: linking alloc_counter.cc into a
// binary replaces the global operator new/delete with counting versions
// (every new/new[]/aligned/nothrow variant forwards to malloc; deletes to
// free). Binaries that do not reference AllocCounter never pull the object
// out of the static archive and keep the default allocator -- the counter
// costs nothing where it is not wanted.
//
// Counting is split two ways:
//  * a process-wide atomic total (relaxed increments), which is what the
//    assertions use -- allocations on pool workers and rank threads count;
//  * a per-thread count for attribution when a regression appears.
//
// Counting only happens between Enable() and Disable() so that test set-up
// (gtest bookkeeping, scenario construction, warm-up) is never charged to
// the window under measurement. For hunting a stray allocation, setting
// COMET_ALLOC_TRAP=1 in the environment makes the first counted allocation
// print a backtrace to stderr (backtrace_symbols_fd: async-signal-safe, no
// allocation) so the offending call site names itself.
#pragma once

#include <cstdint>

namespace comet::util {

struct AllocStats {
  uint64_t allocs = 0;  // operator new calls (all variants)
  uint64_t frees = 0;   // operator delete calls (all variants)
  uint64_t bytes = 0;   // sum of requested allocation sizes
};

class AllocCounter {
 public:
  // Starts counting (process-wide) and zeroes the global window.
  static void Enable();
  // Stops counting. Counts accumulated so far stay readable.
  static void Disable();
  static bool enabled();

  // Totals since the last Enable(), across every thread.
  static AllocStats Global();
  // Counts attributed to the calling thread since the last Enable().
  static AllocStats Thread();

  // True when this binary links the counting operator new/delete. Tests
  // assert on it so a build-system change that drops the interposer fails
  // loudly instead of making every zero-allocation check vacuous.
  static bool Interposed();
};

// RAII measurement window:
//   AllocWindow w;                     // Enable + zero
//   ... code under test ...
//   const AllocStats s = w.Snapshot();  // read without stopping
// Disable() runs at scope exit.
class AllocWindow {
 public:
  AllocWindow() { AllocCounter::Enable(); }
  ~AllocWindow() { AllocCounter::Disable(); }
  AllocWindow(const AllocWindow&) = delete;
  AllocWindow& operator=(const AllocWindow&) = delete;

  AllocStats Snapshot() const { return AllocCounter::Global(); }
};

}  // namespace comet::util
