#include "util/json_writer.h"

#include <cmath>
#include <cstdio>

namespace comet {

void AppendJsonEscaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  AppendJsonEscaped(out, s);
  return out;
}

void AppendJsonNumber(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  out += buf;
}

}  // namespace comet
