#include "util/metadata_store.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/check.h"

namespace comet {

MetadataStore MetadataStore::Load(const std::string& path) {
  MetadataStore store;
  std::ifstream in(path);
  if (!in) {
    return store;  // first run: empty store
  }
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    const size_t eq = line.find('=');
    COMET_CHECK_NE(eq, std::string::npos)
        << "malformed metadata line " << line_no << " in " << path;
    store.entries_[line.substr(0, eq)] = line.substr(eq + 1);
  }
  return store;
}

void MetadataStore::Save(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    COMET_CHECK(out.good()) << "cannot open " << tmp << " for writing";
    out << "# COMET profile metadata\n";
    for (const auto& [k, v] : entries_) {
      out << k << "=" << v << "\n";
    }
  }
  COMET_CHECK_EQ(std::rename(tmp.c_str(), path.c_str()), 0)
      << "atomic rename to " << path << " failed";
}

void MetadataStore::Put(const std::string& key, const std::string& value) {
  COMET_CHECK(key.find('=') == std::string::npos) << "key must not contain '='";
  COMET_CHECK(key.find('\n') == std::string::npos);
  COMET_CHECK(value.find('\n') == std::string::npos);
  entries_[key] = value;
}

void MetadataStore::PutInt(const std::string& key, int64_t value) {
  Put(key, std::to_string(value));
}

void MetadataStore::PutDouble(const std::string& key, double value) {
  std::ostringstream os;
  os.precision(17);
  os << value;
  Put(key, os.str());
}

std::optional<std::string> MetadataStore::Get(const std::string& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::optional<int64_t> MetadataStore::GetInt(const std::string& key) const {
  auto s = Get(key);
  if (!s) {
    return std::nullopt;
  }
  return std::stoll(*s);
}

std::optional<double> MetadataStore::GetDouble(const std::string& key) const {
  auto s = Get(key);
  if (!s) {
    return std::nullopt;
  }
  return std::stod(*s);
}

bool MetadataStore::Contains(const std::string& key) const {
  return entries_.count(key) > 0;
}

}  // namespace comet
