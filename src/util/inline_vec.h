// Small vector with inline storage for the routing hot path.
//
// A TokenRoute holds topk expert ids and weights; topk is 2-8 in every
// configuration the paper evaluates. With std::vector members, every copy
// of a RoutingTable (the route plan keeps one) and every resize of the
// token table costs two heap allocations per token -- the single largest
// allocation source in a serving iteration. InlineVec stores up to N
// elements in the object itself, so those copies and resizes touch no
// heap at all; sizes beyond N (exotic topk) spill to a heap block and stay
// correct, they just lose the zero-allocation property.
//
// Restricted to trivially-copyable T: elements move by memcpy and need no
// destructor calls, which keeps vector<InlineVec> resizes allocation-free
// within capacity.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <initializer_list>
#include <type_traits>

namespace comet::util {

template <typename T, size_t N>
class InlineVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "InlineVec is for POD element types");

 public:
  InlineVec() = default;
  InlineVec(std::initializer_list<T> init) {
    reserve(init.size());
    for (const T& v : init) {
      data_[size_++] = v;
    }
  }
  InlineVec(const InlineVec& other) { *this = other; }
  InlineVec(InlineVec&& other) noexcept { *this = other; }  // copy: cheap
  ~InlineVec() {
    if (data_ != inline_) {
      delete[] data_;
    }
  }

  InlineVec& operator=(const InlineVec& other) {
    if (this == &other) {
      return *this;
    }
    reserve(other.size_);
    std::memcpy(data_, other.data_, other.size_ * sizeof(T));
    size_ = other.size_;
    return *this;
  }
  InlineVec& operator=(InlineVec&& other) noexcept { return *this = other; }

  void push_back(const T& v) {
    reserve(size_ + 1);
    data_[size_++] = v;
  }
  void pop_back() { --size_; }
  void clear() { size_ = 0; }
  // vector semantics: new elements are value-initialized.
  void resize(size_t n) {
    reserve(n);
    for (size_t i = size_; i < n; ++i) {
      data_[i] = T{};
    }
    size_ = n;
  }
  void reserve(size_t n) {
    if (n <= capacity_) {
      return;
    }
    const size_t grown = std::max(n, capacity_ * 2);
    T* heap = new T[grown];
    std::memcpy(heap, data_, size_ * sizeof(T));
    if (data_ != inline_) {
      delete[] data_;
    }
    data_ = heap;
    capacity_ = grown;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }
  // True while the elements live inside the object (the zero-allocation
  // regime); false after a spill to the heap.
  bool is_inline() const { return data_ == inline_; }

  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }
  T* data() { return data_; }
  const T* data() const { return data_; }
  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  friend bool operator==(const InlineVec& a, const InlineVec& b) {
    return a.size_ == b.size_ &&
           std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  T inline_[N];
  T* data_ = inline_;
  size_t size_ = 0;
  size_t capacity_ = N;
};

}  // namespace comet::util
