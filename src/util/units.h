// Unit conventions shared by the whole codebase.
//
// Time is carried as double MICROSECONDS everywhere in the timing plane
// (large enough range for end-to-end model runs, fine enough resolution for
// sub-microsecond tile events). Data sizes are carried as double BYTES;
// bandwidths as bytes per microsecond (== MB/s * 1e-6 ... we provide
// converters so call sites never do raw arithmetic on magic constants).
#pragma once

#include <cstdint>

namespace comet {

// ----- time ---------------------------------------------------------------
constexpr double kUsPerMs = 1000.0;
constexpr double kUsPerSecond = 1e6;

constexpr double MsToUs(double ms) { return ms * kUsPerMs; }
constexpr double UsToMs(double us) { return us / kUsPerMs; }
constexpr double SecondsToUs(double s) { return s * kUsPerSecond; }

// ----- sizes ----------------------------------------------------------------
constexpr double kBytesPerKiB = 1024.0;
constexpr double kBytesPerMiB = 1024.0 * 1024.0;
constexpr double kBytesPerGiB = 1024.0 * 1024.0 * 1024.0;

constexpr double MiB(double x) { return x * kBytesPerMiB; }
constexpr double GiB(double x) { return x * kBytesPerGiB; }

// ----- rates ---------------------------------------------------------------
// Bandwidth unit: bytes per microsecond. 1 GB/s == 1e9 B / 1e6 us == 1e3 B/us.
constexpr double GBps(double gb_per_s) { return gb_per_s * 1e3; }
// Compute unit: flops per microsecond. 1 TFLOP/s == 1e12 / 1e6 == 1e6 f/us.
constexpr double TFlops(double tflops) { return tflops * 1e6; }

// Transfer time (us) for `bytes` at `bytes_per_us`, excluding fixed latency.
constexpr double TransferUs(double bytes, double bytes_per_us) {
  return bytes_per_us > 0.0 ? bytes / bytes_per_us : 0.0;
}

}  // namespace comet
