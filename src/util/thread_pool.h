// Fixed-size worker pool with a deterministic ParallelFor primitive.
//
// The functional plane executes GroupGEMM tiles, row gathers/scatters and
// per-rank simulations that are all embarrassingly parallel: every unit of
// work writes a disjoint slice of the output. ParallelFor splits an index
// range into at most num_threads contiguous chunks with STATIC partitioning
// (chunk boundaries depend only on the range, the grain and the worker
// count), so a run is reproducible and -- because the work units never share
// output elements -- bit-exact at any thread count.
//
// Nested calls (a ParallelFor issued from inside a worker) run inline on the
// calling worker; the pool never deadlocks on its own tasks.
//
// Zero-allocation contract: dispatching a parallel region performs no heap
// allocation. Callables are passed by FunctionRef (non-owning, two
// pointers; the caller blocks until the region retires, so the referent
// always outlives the region), and tasks travel through a fixed POD ring
// instead of a deque of std::function. The serving plane issues thousands
// of regions per iteration; with std::function those were thousands of
// silent mallocs.
#pragma once

#include <cstdint>
#include <memory>

#include "util/function_ref.h"

namespace comet {

class ThreadPool {
 public:
  // Spawns num_threads - 1 workers (the calling thread always executes the
  // first chunk itself); num_threads <= 1 means fully inline execution.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  // Calls fn(i) for every i in [begin, end) exactly once, split into at most
  // min(num_threads, max_chunks) contiguous chunks (max_chunks 0 = pool
  // size) of at least `grain` indices each. Blocks until every chunk
  // finished. If any fn throws, the exception from the lowest-numbered
  // failing chunk is rethrown after all chunks complete.
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   FunctionRef<void(int64_t)> fn, int max_chunks = 0);

  // Chunk-granular variant: fn(chunk_begin, chunk_end) once per chunk.
  // Preferred for fine-grained bodies (amortizes the per-index indirection).
  void ParallelForChunks(int64_t begin, int64_t end, int64_t grain,
                         FunctionRef<void(int64_t, int64_t)> fn,
                         int max_chunks = 0);

  // Runs hook(i) exactly once on EACH worker thread (i = 0 .. workers - 1,
  // in claim order), then returns. A latch inside the tasks guarantees no
  // worker runs two of them. This exists to warm thread_local scratch
  // buffers (GEMM panel scratch, heap wire buffers) on every worker before
  // a zero-allocation measurement window opens -- pool workers are claimed
  // dynamically, so without an explicit sweep a worker could touch its
  // scratch for the first time mid-window. No-op for a serial pool. Must
  // not be called concurrently with a running parallel region.
  void ForEachWorker(FunctionRef<void(int)> hook);

 private:
  struct Impl;
  int num_threads_ = 1;
  std::unique_ptr<Impl> impl_;
};

// Process-wide pool, created on first use. Size: COMET_THREADS env var if
// set to a positive integer, else std::thread::hardware_concurrency().
ThreadPool& GlobalThreadPool();

// Number of threads the global pool (would) use.
int GlobalThreadCount();

// Replaces the global pool with one of `n` threads (n < 1 clamps to 1).
// Call at startup or between parallel regions; not safe concurrently with a
// running ParallelFor.
void SetGlobalThreadCount(int n);

// Convenience wrappers over the global pool. `max_threads` caps the chunk
// count for this call only: 0 = pool size, 1 = serial inline execution
// (the pre-parallel behavior). An enclosing ScopedThreadLimit also applies
// (the smaller of the two wins).
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 FunctionRef<void(int64_t)> fn, int max_threads = 0);
void ParallelForChunks(int64_t begin, int64_t end, int64_t grain,
                       FunctionRef<void(int64_t, int64_t)> fn,
                       int max_threads = 0);

// Innermost ScopedThreadLimit cap active on the calling thread (0 = none).
// RankGroup reads it to (a) decide whether to run ranks concurrently and
// (b) re-install the cap on the dedicated rank threads it spawns, which do
// not inherit the caller's thread-locals.
int CurrentThreadLimit();

// Caps every global-pool ParallelFor issued by THIS thread (and, because
// nested regions run inline, by the work it fans out) while in scope: the
// executors install one from CometOptions::num_threads so the cap reaches
// the whole-matrix Gemm/activation wrappers they call indirectly. 0 = no
// cap; nesting keeps the innermost-smallest limit.
class ScopedThreadLimit {
 public:
  explicit ScopedThreadLimit(int max_threads);
  ~ScopedThreadLimit();
  ScopedThreadLimit(const ScopedThreadLimit&) = delete;
  ScopedThreadLimit& operator=(const ScopedThreadLimit&) = delete;

 private:
  int previous_;
};

}  // namespace comet
