// Lightweight runtime-check macros used across the COMET codebase.
//
// All checks are active in every build type: this library is a research
// runtime where silent corruption is far more expensive than the cost of a
// predictable branch. Failed checks throw comet::CheckError carrying the
// source location and a formatted message, so tests can assert on failures
// and callers can recover if they choose to.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace comet {

// Error thrown by COMET_CHECK* macros. Derives from std::logic_error since a
// failed check always indicates a programming error, not an environmental one.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace internal {

// Builds the final message for a failed check; used by the macros below.
// Kept out-of-line so the macro expansion stays small.
[[noreturn]] void FailCheck(const char* file, int line, const char* expr,
                            const std::string& extra);

// Stream-collector so call sites can append context with operator<<.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  template <typename T>
  CheckMessageBuilder& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

  [[noreturn]] ~CheckMessageBuilder() noexcept(false) {
    FailCheck(file_, line_, expr_, stream_.str());
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace comet

// COMET_CHECK(cond) << "context";  -- throws comet::CheckError when !cond.
#define COMET_CHECK(cond)                                            \
  if (cond) {                                                        \
  } else                                                             \
    ::comet::internal::CheckMessageBuilder(__FILE__, __LINE__, #cond)

#define COMET_CHECK_EQ(a, b) COMET_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define COMET_CHECK_NE(a, b) COMET_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define COMET_CHECK_LT(a, b) COMET_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define COMET_CHECK_LE(a, b) COMET_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define COMET_CHECK_GT(a, b) COMET_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define COMET_CHECK_GE(a, b) COMET_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "
