// ASCII table rendering for the benchmark harnesses. Every bench binary
// prints the rows/series of one paper table or figure; this formatter keeps
// their output uniform and diff-friendly.
#pragma once

#include <string>
#include <vector>

namespace comet {

// Column-aligned ASCII table. Rows are added as strings; numeric helpers
// format with fixed precision so bench output is stable across runs.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> headers);

  // Adds a row. The row is padded with empty cells (or truncated) to the
  // header width.
  void AddRow(std::vector<std::string> cells);

  // Renders the table with a header separator, e.g.:
  //   M      | Comet (ms) | Tutel (ms)
  //   -------+------------+-----------
  //   4096   | 1.23       | 2.31
  std::string Render() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Fixed-precision float formatting ("1.234"). digits in [0, 17].
std::string FormatDouble(double value, int digits = 3);

// Formats microseconds as milliseconds with 3 decimals ("1.234 ms" -> value
// only, unit left to the column header).
std::string FormatUsAsMs(double us, int digits = 3);

// "1.96x" style speedup formatting.
std::string FormatSpeedup(double ratio, int digits = 2);

// Percentage with one decimal: 0.865 -> "86.5%".
std::string FormatPercent(double fraction, int digits = 1);

}  // namespace comet
