#include "util/stats.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace comet {

void OnlineStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (count_ < 1) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void SampleSet::Add(double x) {
  samples_.push_back(x);
  sorted_valid_ = false;
}

void SampleSet::EnsureSorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double SampleSet::Mean() const {
  COMET_CHECK(!samples_.empty());
  double s = 0.0;
  for (double x : samples_) {
    s += x;
  }
  return s / static_cast<double>(samples_.size());
}

double SampleSet::Stddev() const { return PopulationStddev(samples_); }

double SampleSet::Min() const {
  EnsureSorted();
  COMET_CHECK(!sorted_.empty());
  return sorted_.front();
}

double SampleSet::Max() const {
  EnsureSorted();
  COMET_CHECK(!sorted_.empty());
  return sorted_.back();
}

size_t Histogram::BucketIndex(double v) {
  // !(v > 1.0) also routes NaN into bucket 0 instead of hitting the
  // float->integer cast below (which would be UB).
  if (!(v > 1.0)) {
    return 0;
  }
  if (v > 0x1p62) {  // overflow bucket: > 2^62, including +inf
    return kBuckets - 1;
  }
  // v in (1, 2^62]: ceil(v) is an integer in [2, 2^62], and the bucket with
  // upper bound 2^i holds exactly the values whose ceiling n satisfies
  // bit_width(n - 1) == i. Pure integer bit ops -- no log2 calls.
  const auto n = static_cast<uint64_t>(std::ceil(v));
  return static_cast<size_t>(std::bit_width(n - 1));
}

double Histogram::BucketUpperBound(size_t bucket) {
  COMET_CHECK_LT(bucket, kBuckets);
  if (bucket == kBuckets - 1) {
    return std::numeric_limits<double>::infinity();
  }
  return std::ldexp(1.0, static_cast<int>(bucket));  // 2^bucket
}

void Histogram::Add(double v) {
  ++buckets_[BucketIndex(v)];
  ++count_;
  sum_ += v;
}

void Histogram::Clear() {
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0.0;
}

double Histogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

uint64_t Histogram::bucket_count(size_t bucket) const {
  COMET_CHECK_LT(bucket, kBuckets);
  return buckets_[bucket];
}

double Histogram::PercentileUpperBound(double p) const {
  COMET_CHECK_GT(count_, 0u);
  COMET_CHECK_GE(p, 0.0);
  COMET_CHECK_LE(p, 100.0);
  // Same rank arithmetic as NearestRankSorted: rank = ceil(p*n/100),
  // multiply before dividing, p == 0 maps to rank 1.
  auto rank = static_cast<uint64_t>(
      std::ceil(p * static_cast<double>(count_) / 100.0));
  rank = std::max<uint64_t>(rank, 1);
  uint64_t cumulative = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    cumulative += buckets_[b];
    if (cumulative >= rank) {
      return BucketUpperBound(b);
    }
  }
  return BucketUpperBound(kBuckets - 1);
}

Histogram Histogram::FromBuckets(std::span<const uint64_t> buckets,
                                 double sum) {
  COMET_CHECK_EQ(buckets.size(), kBuckets);
  Histogram out;
  for (size_t b = 0; b < kBuckets; ++b) {
    out.buckets_[b] = buckets[b];
    out.count_ += buckets[b];
  }
  out.sum_ = sum;
  return out;
}

double SampleSet::Percentile(double p) const {
  EnsureSorted();
  COMET_CHECK(!sorted_.empty());
  COMET_CHECK_GE(p, 0.0);
  COMET_CHECK_LE(p, 100.0);
  if (sorted_.size() == 1) {
    return sorted_[0];
  }
  const double pos = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

namespace {

// Nearest-rank lookup over an already-sorted sample vector.
double NearestRankSorted(std::span<const double> sorted, double p) {
  COMET_CHECK(!sorted.empty());
  COMET_CHECK_GE(p, 0.0);
  COMET_CHECK_LE(p, 100.0);
  // rank = ceil(p*n/100), clamped to [1, n]; p == 0 maps to rank 1 (min).
  // Multiply BEFORE dividing: p*n is exact for integer-valued p (< 2^53),
  // and an integer quotient divides exactly, so ceil never overshoots a
  // rank the way ceil((p/100)*n) does (e.g. p=55, n=20: 0.55*20 rounds to
  // 11.000000000000002, whose ceil is 12).
  const auto rank = static_cast<size_t>(
      std::ceil(p * static_cast<double>(sorted.size()) / 100.0));
  const size_t index = rank == 0 ? 0 : rank - 1;
  return sorted[std::min(index, sorted.size() - 1)];
}

}  // namespace

double SampleSet::PercentileExact(double p) const {
  EnsureSorted();
  return NearestRankSorted(sorted_, p);
}

double PercentileNearestRank(std::span<const double> values, double p) {
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return NearestRankSorted(sorted, p);
}

LatencySummary SummarizeLatency(std::span<const double> values) {
  LatencySummary out;
  if (values.empty()) {
    return out;
  }
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  out.count = sorted.size();
  double sum = 0.0;
  for (double v : sorted) {
    sum += v;
  }
  out.mean = sum / static_cast<double>(sorted.size());
  out.min = sorted.front();
  out.max = sorted.back();
  out.p50 = NearestRankSorted(sorted, 50.0);
  out.p95 = NearestRankSorted(sorted, 95.0);
  out.p99 = NearestRankSorted(sorted, 99.0);
  return out;
}

double GeometricMean(const std::vector<double>& values) {
  COMET_CHECK(!values.empty());
  double log_sum = 0.0;
  for (double v : values) {
    COMET_CHECK_GT(v, 0.0);
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double PopulationStddev(const std::vector<double>& values) {
  COMET_CHECK(!values.empty());
  double mean = 0.0;
  for (double v : values) {
    mean += v;
  }
  mean /= static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) {
    var += (v - mean) * (v - mean);
  }
  return std::sqrt(var / static_cast<double>(values.size()));
}

}  // namespace comet
