#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace comet {

void OnlineStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (count_ < 1) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void SampleSet::Add(double x) {
  samples_.push_back(x);
  sorted_valid_ = false;
}

void SampleSet::EnsureSorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double SampleSet::Mean() const {
  COMET_CHECK(!samples_.empty());
  double s = 0.0;
  for (double x : samples_) {
    s += x;
  }
  return s / static_cast<double>(samples_.size());
}

double SampleSet::Stddev() const { return PopulationStddev(samples_); }

double SampleSet::Min() const {
  EnsureSorted();
  COMET_CHECK(!sorted_.empty());
  return sorted_.front();
}

double SampleSet::Max() const {
  EnsureSorted();
  COMET_CHECK(!sorted_.empty());
  return sorted_.back();
}

double SampleSet::Percentile(double p) const {
  EnsureSorted();
  COMET_CHECK(!sorted_.empty());
  COMET_CHECK_GE(p, 0.0);
  COMET_CHECK_LE(p, 100.0);
  if (sorted_.size() == 1) {
    return sorted_[0];
  }
  const double pos = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

namespace {

// Nearest-rank lookup over an already-sorted sample vector.
double NearestRankSorted(std::span<const double> sorted, double p) {
  COMET_CHECK(!sorted.empty());
  COMET_CHECK_GE(p, 0.0);
  COMET_CHECK_LE(p, 100.0);
  // rank = ceil(p*n/100), clamped to [1, n]; p == 0 maps to rank 1 (min).
  // Multiply BEFORE dividing: p*n is exact for integer-valued p (< 2^53),
  // and an integer quotient divides exactly, so ceil never overshoots a
  // rank the way ceil((p/100)*n) does (e.g. p=55, n=20: 0.55*20 rounds to
  // 11.000000000000002, whose ceil is 12).
  const auto rank = static_cast<size_t>(
      std::ceil(p * static_cast<double>(sorted.size()) / 100.0));
  const size_t index = rank == 0 ? 0 : rank - 1;
  return sorted[std::min(index, sorted.size() - 1)];
}

}  // namespace

double SampleSet::PercentileExact(double p) const {
  EnsureSorted();
  return NearestRankSorted(sorted_, p);
}

double PercentileNearestRank(std::span<const double> values, double p) {
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return NearestRankSorted(sorted, p);
}

LatencySummary SummarizeLatency(std::span<const double> values) {
  LatencySummary out;
  if (values.empty()) {
    return out;
  }
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  out.count = sorted.size();
  double sum = 0.0;
  for (double v : sorted) {
    sum += v;
  }
  out.mean = sum / static_cast<double>(sorted.size());
  out.min = sorted.front();
  out.max = sorted.back();
  out.p50 = NearestRankSorted(sorted, 50.0);
  out.p95 = NearestRankSorted(sorted, 95.0);
  out.p99 = NearestRankSorted(sorted, 99.0);
  return out;
}

double GeometricMean(const std::vector<double>& values) {
  COMET_CHECK(!values.empty());
  double log_sum = 0.0;
  for (double v : values) {
    COMET_CHECK_GT(v, 0.0);
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double PopulationStddev(const std::vector<double>& values) {
  COMET_CHECK(!values.empty());
  double mean = 0.0;
  for (double v : values) {
    mean += v;
  }
  mean /= static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) {
    var += (v - mean) * (v - mean);
  }
  return std::sqrt(var / static_cast<double>(values.size()));
}

}  // namespace comet
