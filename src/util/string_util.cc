#include "util/string_util.h"

#include <cctype>
#include <sstream>

namespace comet {

std::vector<std::string> Split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string field;
  std::istringstream in(s);
  while (std::getline(in, field, delim)) {
    out.push_back(field);
  }
  if (!s.empty() && s.back() == delim) {
    out.emplace_back();
  }
  if (s.empty()) {
    out.emplace_back();
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, const std::string& delim) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out += delim;
    }
    out += parts[i];
  }
  return out;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) {
    ++b;
  }
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) {
    --e;
  }
  return s.substr(b, e - b);
}

}  // namespace comet
