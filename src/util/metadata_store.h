// Persistent key-value metadata store used by the adaptive workload
// assignment (paper §3.2.2): "Prior to deployment, the optimal configuration
// for each setup is profiled and stored as metadata. During runtime, COMET
// utilizes this metadata to select the optimal kernel for execution."
//
// The store is a flat text file of `key=value` lines. Keys are arbitrary
// strings without '\n' or '='; values are strings without '\n'. Writes are
// atomic at the whole-file level (write temp + rename).
#pragma once

#include <map>
#include <optional>
#include <string>

namespace comet {

class MetadataStore {
 public:
  MetadataStore() = default;

  // Loads from `path`. Missing file yields an empty store (first run).
  // Malformed lines throw CheckError.
  static MetadataStore Load(const std::string& path);

  // Persists the current contents to `path` atomically.
  void Save(const std::string& path) const;

  void Put(const std::string& key, const std::string& value);
  void PutInt(const std::string& key, int64_t value);
  void PutDouble(const std::string& key, double value);

  std::optional<std::string> Get(const std::string& key) const;
  std::optional<int64_t> GetInt(const std::string& key) const;
  std::optional<double> GetDouble(const std::string& key) const;

  bool Contains(const std::string& key) const;
  // Drops every entry (the serving plane invalidates its batch-profile
  // store when the replica layout changes and the cached division points no
  // longer describe the plan being executed).
  void Clear() { entries_.clear(); }
  size_t size() const { return entries_.size(); }
  const std::map<std::string, std::string>& entries() const { return entries_; }

 private:
  std::map<std::string, std::string> entries_;
};

}  // namespace comet
