// Fluid (max-min fair) network model for concurrent flows.
//
// Collectives like all-to-all put many flows on the fabric at once; each
// rank's egress and ingress capacity bounds the sum of its flows' rates.
// This model advances a set of flows through progressive filling: at every
// step, the bottleneck port fixes the rate of its flows, the earliest flow
// completion defines the step length, and rates are recomputed. The result
// is a deterministic per-flow completion time that honours port capacities,
// which is what the baselines' collective cost models are built on.
#pragma once

#include <cstdint>
#include <vector>

namespace comet {

struct Flow {
  int src = 0;
  int dst = 0;
  double bytes = 0.0;
  double ready_us = 0.0;  // flow enters the network at this time
};

struct FlowCompletion {
  double start_us = 0.0;
  double end_us = 0.0;
};

class FluidNetwork {
 public:
  // `num_ports` ranks; each has `egress_bytes_per_us` out-capacity and
  // `ingress_bytes_per_us` in-capacity. `latency_us` is added to every flow's
  // completion.
  FluidNetwork(int num_ports, double egress_bytes_per_us,
               double ingress_bytes_per_us, double latency_us);

  // Simulates all flows; returns completion intervals parallel to `flows`.
  // Flows with src == dst complete after `local_copy_us(bytes)` -- they never
  // touch the fabric; callers model local copies separately, so here they
  // finish at ready time + latency only if bytes > 0 is remote. For
  // simplicity flows with src == dst are rejected.
  std::vector<FlowCompletion> Run(const std::vector<Flow>& flows) const;

  int num_ports() const { return num_ports_; }

 private:
  int num_ports_;
  double egress_;
  double ingress_;
  double latency_us_;
};

}  // namespace comet
