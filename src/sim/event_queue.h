// Minimal discrete-event core: a time-ordered queue of callbacks.
//
// Deterministic: events at equal timestamps fire in scheduling order.
// Higher-level components (slot pools, bandwidth channels, the stream
// executor) are built as deterministic schedules; the event queue is the
// substrate for the cases where execution order genuinely depends on
// simulated time (out-of-order tile issue, network flow completion).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace comet {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  // Schedules `fn` at absolute time `t` (us). Requires t >= now().
  void Schedule(double t, Callback fn);

  // Schedules `fn` `dt` after now.
  void ScheduleAfter(double dt, Callback fn) { Schedule(now_ + dt, std::move(fn)); }

  // Runs events until the queue drains. Returns the final time.
  double RunAll();

  // Runs events with time <= t_end; leaves later events queued.
  void RunUntil(double t_end);

  double now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  size_t pending() const { return heap_.size(); }

 private:
  struct Event {
    double time;
    uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  double now_ = 0.0;
  uint64_t next_seq_ = 0;
};

}  // namespace comet
