#include "sim/bandwidth_queue.h"

#include <algorithm>

#include "util/check.h"

namespace comet {

BandwidthQueue::BandwidthQueue(double bandwidth_bytes_per_us, double latency_us)
    : bandwidth_bytes_per_us_(bandwidth_bytes_per_us), latency_us_(latency_us) {
  COMET_CHECK_GT(bandwidth_bytes_per_us_, 0.0);
  COMET_CHECK_GE(latency_us_, 0.0);
}

std::vector<TransferResult> BandwidthQueue::Schedule(
    const std::vector<TransferJob>& jobs, double start_time_us) const {
  std::vector<TransferResult> out;
  ScheduleInto(jobs, start_time_us, &out);
  return out;
}

void BandwidthQueue::ScheduleInto(const std::vector<TransferJob>& jobs,
                                  double start_time_us,
                                  std::vector<TransferResult>* out) const {
  out->resize(jobs.size());
  double channel_free = start_time_us;
  for (size_t i = 0; i < jobs.size(); ++i) {
    COMET_CHECK_GE(jobs[i].bytes, 0.0);
    const double start = std::max(channel_free, jobs[i].ready_us);
    // The channel is occupied while the job's bytes drain; the wire latency
    // is a pipeline delay on delivery that overlaps with the NEXT job's
    // injection (GPU-initiated puts are fire-and-forget, so back-to-back
    // messages do not serialize their flight times).
    const double drained = start + jobs[i].bytes / bandwidth_bytes_per_us_;
    (*out)[i] = TransferResult{start, drained + latency_us_};
    channel_free = drained;
  }
}

double BandwidthQueue::Makespan(const std::vector<TransferJob>& jobs,
                                double start_time_us) const {
  const auto results = Schedule(jobs, start_time_us);
  double t = start_time_us;
  for (const auto& r : results) {
    t = std::max(t, r.end_us);
  }
  return t;
}

}  // namespace comet
