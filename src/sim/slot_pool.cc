#include "sim/slot_pool.h"

#include <algorithm>
#include <queue>

#include "util/check.h"

namespace comet {

void ScheduleInOrderInto(const std::vector<SlotTask>& tasks, int num_slots,
                         double start_time_us, std::vector<double>& slot_heap,
                         SlotSchedule* out) {
  COMET_CHECK_GT(num_slots, 0);
  out->tasks.resize(tasks.size());
  out->makespan_us = start_time_us;
  out->stall_us = 0.0;
  if (tasks.empty()) {
    return;
  }
  // Min-heap of slot free times (all-equal start is already a valid heap).
  slot_heap.assign(static_cast<size_t>(num_slots), start_time_us);
  double makespan = start_time_us;
  for (size_t i = 0; i < tasks.size(); ++i) {
    COMET_CHECK_GE(tasks[i].duration_us, 0.0);
    const double slot_free = slot_heap.front();
    std::pop_heap(slot_heap.begin(), slot_heap.end(), std::greater<double>());
    const double start = std::max(slot_free, tasks[i].ready_us);
    const double end = start + tasks[i].duration_us;
    out->tasks[i] = ScheduledTask{start, end};
    out->stall_us += start - slot_free;
    makespan = std::max(makespan, end);
    slot_heap.back() = end;
    std::push_heap(slot_heap.begin(), slot_heap.end(), std::greater<double>());
  }
  out->makespan_us = makespan;
}

SlotSchedule ScheduleInOrder(const std::vector<SlotTask>& tasks, int num_slots,
                             double start_time_us) {
  SlotSchedule out;
  std::vector<double> slot_heap;
  ScheduleInOrderInto(tasks, num_slots, start_time_us, slot_heap, &out);
  return out;
}

SlotSchedule ScheduleEarliestReady(const std::vector<SlotTask>& tasks,
                                   int num_slots, double start_time_us) {
  COMET_CHECK_GT(num_slots, 0);
  SlotSchedule out;
  out.tasks.resize(tasks.size());
  if (tasks.empty()) {
    out.makespan_us = start_time_us;
    return out;
  }

  // Tasks sorted by (ready, index); consumed as they become ready.
  std::vector<size_t> order(tasks.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return tasks[a].ready_us < tasks[b].ready_us;
  });

  std::priority_queue<double, std::vector<double>, std::greater<double>> slots;
  for (int i = 0; i < num_slots; ++i) {
    slots.push(start_time_us);
  }
  double makespan = start_time_us;
  size_t next = 0;
  while (next < order.size()) {
    const size_t idx = order[next];
    ++next;
    const double slot_free = slots.top();
    slots.pop();
    const double start = std::max(slot_free, tasks[idx].ready_us);
    if (start > slot_free) {
      out.stall_us += start - slot_free;
    }
    const double end = start + tasks[idx].duration_us;
    out.tasks[idx] = ScheduledTask{start, end};
    makespan = std::max(makespan, end);
    slots.push(end);
  }
  out.makespan_us = makespan;
  return out;
}

}  // namespace comet
