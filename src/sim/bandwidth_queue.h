// Serialized bandwidth channel with pipelined delivery latency.
//
// Models the communication side of a fused kernel: nc communication thread
// blocks collectively sustain `bandwidth_bytes_per_us`; transfer jobs are
// serviced in submission order (COMET fixes the order by rescheduling, so a
// FIFO pipe is the faithful model). The channel is busy while a job's bytes
// drain; the per-message wire latency delays DELIVERY but overlaps with the
// next job's injection -- GPU-initiated puts are fire-and-forget, so a burst
// of messages pays the latency once at the tail, not once per message. A job
// cannot start before its `ready_us` (for computation->communication
// pipelines where the payload must be produced first).
#pragma once

#include <vector>

namespace comet {

struct TransferJob {
  double ready_us = 0.0;
  double bytes = 0.0;
};

struct TransferResult {
  double start_us = 0.0;  // channel begins moving this job
  double end_us = 0.0;    // last byte delivered
};

class BandwidthQueue {
 public:
  BandwidthQueue(double bandwidth_bytes_per_us, double latency_us);

  // Schedules jobs in order; returns per-job completion intervals.
  std::vector<TransferResult> Schedule(const std::vector<TransferJob>& jobs,
                                       double start_time_us = 0.0) const;

  // Allocation-free variant: rebuilds `out` in place (steady-state free once
  // its capacity covers the largest job count).
  void ScheduleInto(const std::vector<TransferJob>& jobs, double start_time_us,
                    std::vector<TransferResult>* out) const;

  // Completion time of the last job (start_time_us when no jobs).
  double Makespan(const std::vector<TransferJob>& jobs,
                  double start_time_us = 0.0) const;

  double bandwidth() const { return bandwidth_bytes_per_us_; }
  double latency() const { return latency_us_; }

 private:
  double bandwidth_bytes_per_us_;
  double latency_us_;
};

}  // namespace comet
