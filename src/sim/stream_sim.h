// Host + CUDA-stream execution model for kernel-per-op systems.
//
// All four baselines (Megatron-Cutlass, Megatron-TE, FasterMoE, Tutel)
// launch separate kernels on one or more streams; the host serializes kernel
// launches (each costing `launch_overhead_us`), a stream serializes its own
// kernels, and cross-stream ordering is expressed with dependencies (CUDA
// events). Kernels are issued in program order, so start times resolve with
// a single forward pass. The executor also records everything into a
// Timeline for breakdown reporting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/timeline.h"

namespace comet {

using KernelId = int64_t;

class StreamSim {
 public:
  // `launch_overhead_us`: host time consumed per kernel launch. `start_us`:
  // initial host clock.
  explicit StreamSim(double launch_overhead_us, double start_us = 0.0);

  // Creates a stream lane; returns its id (also the Timeline lane).
  int AddStream(const std::string& name);

  // Enqueues a kernel on `stream`. The kernel starts when (a) the host has
  // issued it, (b) the stream is free, and (c) all `deps` have completed.
  // `duration_us` >= 0. Returns the kernel id usable as a dependency.
  KernelId Launch(int stream, std::string label, OpCategory category,
                  double duration_us, const std::vector<KernelId>& deps = {});

  // Adds pure host time (framework/API overhead) that delays later launches,
  // recorded under OpCategory::kHost.
  void HostWork(std::string label, double duration_us);

  double KernelEnd(KernelId id) const;
  double KernelStart(KernelId id) const;

  // Time at which all enqueued kernels have finished.
  double Finish() const;
  // Host-side time after the last issued launch.
  double HostTime() const { return host_time_us_; }

  const Timeline& timeline() const { return timeline_; }

 private:
  double launch_overhead_us_;
  double host_time_us_;
  std::vector<double> stream_free_us_;
  std::vector<std::string> stream_names_;
  std::vector<double> kernel_start_;
  std::vector<double> kernel_end_;
  Timeline timeline_;
};

}  // namespace comet
