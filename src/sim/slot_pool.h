// Resource-constrained task scheduling over a fixed number of slots.
//
// A "slot" models one persistent thread block (or one SM) of a fused kernel.
// Two issue disciplines are provided:
//
//  * In-order issue (`ScheduleInOrder`): tasks are dispatched to slots
//    strictly in the given order; a slot that picks up a task whose inputs
//    have not arrived spins until the task's ready time. This mirrors how a
//    persistent GEMM kernel walks its tile queue and is why COMET's
//    rescheduling (sorting tiles so that ready tiles come first) matters.
//
//  * Out-of-order issue (`ScheduleEarliestReady`): a freed slot picks the
//    ready task with the smallest ready time (FIFO among ready). This is the
//    idealized scheduler used for ablation comparison -- rescheduling
//    recovers most of the gap between in-order and this oracle.
//
// Both disciplines are deterministic.
#pragma once

#include <cstdint>
#include <vector>

namespace comet {

struct SlotTask {
  double ready_us = 0.0;     // inputs available at this time
  double duration_us = 0.0;  // service time on one slot
};

struct ScheduledTask {
  double start_us = 0.0;
  double end_us = 0.0;
};

struct SlotSchedule {
  std::vector<ScheduledTask> tasks;  // parallel to the input vector
  double makespan_us = 0.0;          // latest end time (0 when no tasks)
  // Total slot-time spent waiting for not-yet-ready tasks (in-order only;
  // out-of-order waits only when nothing is ready).
  double stall_us = 0.0;
};

// Dispatches tasks to `num_slots` slots strictly in vector order, starting at
// `start_time_us`.
SlotSchedule ScheduleInOrder(const std::vector<SlotTask>& tasks, int num_slots,
                             double start_time_us = 0.0);

// Allocation-free variant: `slot_heap` is caller-owned scratch holding the
// slot free-time min-heap, `out` is rebuilt in place. Bit-identical to
// ScheduleInOrder -- the heap only ever yields the minimum free time, and
// slots with equal free times are interchangeable.
void ScheduleInOrderInto(const std::vector<SlotTask>& tasks, int num_slots,
                         double start_time_us, std::vector<double>& slot_heap,
                         SlotSchedule* out);

// Dispatches the ready task with smallest (ready, index) whenever a slot
// frees up.
SlotSchedule ScheduleEarliestReady(const std::vector<SlotTask>& tasks,
                                   int num_slots, double start_time_us = 0.0);

}  // namespace comet
