#include "sim/network.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace comet {

FluidNetwork::FluidNetwork(int num_ports, double egress_bytes_per_us,
                           double ingress_bytes_per_us, double latency_us)
    : num_ports_(num_ports),
      egress_(egress_bytes_per_us),
      ingress_(ingress_bytes_per_us),
      latency_us_(latency_us) {
  COMET_CHECK_GT(num_ports_, 0);
  COMET_CHECK_GT(egress_, 0.0);
  COMET_CHECK_GT(ingress_, 0.0);
  COMET_CHECK_GE(latency_us_, 0.0);
}

std::vector<FlowCompletion> FluidNetwork::Run(
    const std::vector<Flow>& flows) const {
  std::vector<FlowCompletion> out(flows.size());
  std::vector<double> remaining(flows.size());
  std::vector<bool> done(flows.size(), false);
  size_t active_or_pending = 0;
  for (size_t i = 0; i < flows.size(); ++i) {
    const auto& f = flows[i];
    COMET_CHECK_GE(f.src, 0);
    COMET_CHECK_LT(f.src, num_ports_);
    COMET_CHECK_GE(f.dst, 0);
    COMET_CHECK_LT(f.dst, num_ports_);
    COMET_CHECK_NE(f.src, f.dst) << "local flows do not use the fabric";
    COMET_CHECK_GE(f.bytes, 0.0);
    remaining[i] = f.bytes;
    out[i].start_us = f.ready_us;
    if (f.bytes <= 0.0) {
      out[i].end_us = f.ready_us + latency_us_;
      done[i] = true;
    } else {
      ++active_or_pending;
    }
  }

  double now = 0.0;
  // Start simulation at the earliest ready time.
  {
    double earliest = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < flows.size(); ++i) {
      if (!done[i]) {
        earliest = std::min(earliest, flows[i].ready_us);
      }
    }
    if (active_or_pending > 0) {
      now = earliest;
    }
  }

  while (active_or_pending > 0) {
    // Max-min fair rates via iterative water-filling over ports.
    std::vector<double> rate(flows.size(), 0.0);
    std::vector<bool> fixed(flows.size(), true);
    std::vector<size_t> active;
    for (size_t i = 0; i < flows.size(); ++i) {
      if (!done[i] && flows[i].ready_us <= now) {
        active.push_back(i);
        fixed[i] = false;
      }
    }
    if (active.empty()) {
      // Jump to the next arrival.
      double next = std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < flows.size(); ++i) {
        if (!done[i]) {
          next = std::min(next, flows[i].ready_us);
        }
      }
      now = next;
      continue;
    }

    std::vector<double> egress_cap(static_cast<size_t>(num_ports_), egress_);
    std::vector<double> ingress_cap(static_cast<size_t>(num_ports_), ingress_);
    size_t unfixed = active.size();
    while (unfixed > 0) {
      // Find the tightest port: min(cap / #unfixed flows through it).
      double best_share = std::numeric_limits<double>::infinity();
      for (int p = 0; p < num_ports_; ++p) {
        int out_n = 0;
        int in_n = 0;
        for (size_t i : active) {
          if (fixed[i]) {
            continue;
          }
          if (flows[i].src == p) {
            ++out_n;
          }
          if (flows[i].dst == p) {
            ++in_n;
          }
        }
        if (out_n > 0) {
          best_share = std::min(best_share, egress_cap[static_cast<size_t>(p)] /
                                                out_n);
        }
        if (in_n > 0) {
          best_share = std::min(
              best_share, ingress_cap[static_cast<size_t>(p)] / in_n);
        }
      }
      COMET_CHECK(best_share < std::numeric_limits<double>::infinity());
      // Fix every unfixed flow passing through a port saturated at this
      // share. (Conservative: fix ALL unfixed flows at best_share whose src
      // or dst port attains the bottleneck.)
      bool fixed_any = false;
      for (int p = 0; p < num_ports_; ++p) {
        int out_n = 0;
        int in_n = 0;
        for (size_t i : active) {
          if (!fixed[i] && flows[i].src == p) {
            ++out_n;
          }
          if (!fixed[i] && flows[i].dst == p) {
            ++in_n;
          }
        }
        const bool out_tight =
            out_n > 0 &&
            egress_cap[static_cast<size_t>(p)] / out_n <= best_share * (1 + 1e-12);
        const bool in_tight =
            in_n > 0 && ingress_cap[static_cast<size_t>(p)] / in_n <=
                            best_share * (1 + 1e-12);
        if (!out_tight && !in_tight) {
          continue;
        }
        for (size_t i : active) {
          if (fixed[i]) {
            continue;
          }
          if ((out_tight && flows[i].src == p) ||
              (in_tight && flows[i].dst == p)) {
            rate[i] = best_share;
            fixed[i] = true;
            --unfixed;
            fixed_any = true;
            egress_cap[static_cast<size_t>(flows[i].src)] -= best_share;
            ingress_cap[static_cast<size_t>(flows[i].dst)] -= best_share;
          }
        }
      }
      COMET_CHECK(fixed_any) << "water-filling failed to make progress";
    }

    // Step length: min over active flows of remaining/rate, and the next
    // arrival of a pending flow.
    double dt = std::numeric_limits<double>::infinity();
    for (size_t i : active) {
      if (rate[i] > 0.0) {
        dt = std::min(dt, remaining[i] / rate[i]);
      }
    }
    for (size_t i = 0; i < flows.size(); ++i) {
      if (!done[i] && flows[i].ready_us > now) {
        dt = std::min(dt, flows[i].ready_us - now);
      }
    }
    COMET_CHECK(dt > 0.0 && dt < std::numeric_limits<double>::infinity());

    for (size_t i : active) {
      remaining[i] -= rate[i] * dt;
      if (remaining[i] <= 1e-9) {
        remaining[i] = 0.0;
        done[i] = true;
        --active_or_pending;
        out[i].end_us = now + dt + latency_us_;
      }
    }
    now += dt;
  }
  return out;
}

}  // namespace comet
