#include "sim/event_queue.h"

#include "util/check.h"

namespace comet {

void EventQueue::Schedule(double t, Callback fn) {
  COMET_CHECK_GE(t, now_) << "cannot schedule into the past";
  heap_.push(Event{t, next_seq_++, std::move(fn)});
}

double EventQueue::RunAll() {
  while (!heap_.empty()) {
    // The callback may schedule more events, so copy out before popping.
    Event ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    now_ = ev.time;
    ev.fn();
  }
  return now_;
}

void EventQueue::RunUntil(double t_end) {
  while (!heap_.empty() && heap_.top().time <= t_end) {
    Event ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    now_ = ev.time;
    ev.fn();
  }
  now_ = std::max(now_, t_end);
}

}  // namespace comet
