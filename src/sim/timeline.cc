#include "sim/timeline.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"
#include "util/table.h"

namespace comet {

std::string OpCategoryName(OpCategory category) {
  switch (category) {
    case OpCategory::kGating:
      return "gating";
    case OpCategory::kLayer0Comm:
      return "layer0-comm";
    case OpCategory::kLayer0Comp:
      return "layer0-comp";
    case OpCategory::kActivation:
      return "activation";
    case OpCategory::kLayer1Comp:
      return "layer1-comp";
    case OpCategory::kLayer1Comm:
      return "layer1-comm";
    case OpCategory::kHost:
      return "host";
    case OpCategory::kAttention:
      return "attention";
    case OpCategory::kOther:
      return "other";
  }
  COMET_CHECK(false) << "unknown category";
  return "";
}

bool IsCommCategory(OpCategory category) {
  return category == OpCategory::kLayer0Comm ||
         category == OpCategory::kLayer1Comm;
}

bool IsCompCategory(OpCategory category) {
  return category == OpCategory::kLayer0Comp ||
         category == OpCategory::kLayer1Comp ||
         category == OpCategory::kActivation ||
         category == OpCategory::kGating;
}

void Timeline::Add(TimeInterval interval) {
  COMET_CHECK_LE(interval.start_us, interval.end_us)
      << "interval '" << interval.label << "' ends before it starts";
  intervals_.push_back(std::move(interval));
}

void Timeline::Add(std::string label, OpCategory category, int lane,
                   double start_us, double end_us) {
  Add(TimeInterval{std::move(label), category, lane, start_us, end_us});
}

void Timeline::Merge(const Timeline& other, double offset_us) {
  for (TimeInterval iv : other.intervals_) {
    iv.start_us += offset_us;
    iv.end_us += offset_us;
    Add(std::move(iv));
  }
}

double Timeline::SpanStart() const {
  double t = 0.0;
  bool first = true;
  for (const auto& iv : intervals_) {
    if (first || iv.start_us < t) {
      t = iv.start_us;
      first = false;
    }
  }
  return t;
}

double Timeline::SpanEnd() const {
  double t = 0.0;
  for (const auto& iv : intervals_) {
    t = std::max(t, iv.end_us);
  }
  return t;
}

double Timeline::CategoryBusy(OpCategory category) const {
  double total = 0.0;
  for (const auto& iv : intervals_) {
    if (iv.category == category) {
      total += iv.Duration();
    }
  }
  return total;
}

namespace {

// Union length of a set of [start, end) intervals.
double UnionLength(std::vector<std::pair<double, double>> spans) {
  if (spans.empty()) {
    return 0.0;
  }
  std::sort(spans.begin(), spans.end());
  double total = 0.0;
  double cur_start = spans[0].first;
  double cur_end = spans[0].second;
  for (size_t i = 1; i < spans.size(); ++i) {
    if (spans[i].first > cur_end) {
      total += cur_end - cur_start;
      cur_start = spans[i].first;
      cur_end = spans[i].second;
    } else {
      cur_end = std::max(cur_end, spans[i].second);
    }
  }
  total += cur_end - cur_start;
  return total;
}

// Intersection length of the unions of two interval sets: total time both
// a-intervals and b-intervals are active.
double IntersectLength(std::vector<std::pair<double, double>> a,
                       std::vector<std::pair<double, double>> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  // Merge each set into disjoint unions first.
  auto merge = [](std::vector<std::pair<double, double>>& v) {
    std::vector<std::pair<double, double>> out;
    for (const auto& s : v) {
      if (!out.empty() && s.first <= out.back().second) {
        out.back().second = std::max(out.back().second, s.second);
      } else {
        out.push_back(s);
      }
    }
    v = std::move(out);
  };
  merge(a);
  merge(b);
  double total = 0.0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const double lo = std::max(a[i].first, b[j].first);
    const double hi = std::min(a[i].second, b[j].second);
    if (lo < hi) {
      total += hi - lo;
    }
    if (a[i].second < b[j].second) {
      ++i;
    } else {
      ++j;
    }
  }
  return total;
}

}  // namespace

double Timeline::UnionTime(OpCategory category) const {
  std::vector<std::pair<double, double>> spans;
  for (const auto& iv : intervals_) {
    if (iv.category == category) {
      spans.emplace_back(iv.start_us, iv.end_us);
    }
  }
  return UnionLength(std::move(spans));
}

double Timeline::CommCompOverlap() const {
  std::vector<std::pair<double, double>> comm;
  std::vector<std::pair<double, double>> comp;
  for (const auto& iv : intervals_) {
    if (IsCommCategory(iv.category)) {
      comm.emplace_back(iv.start_us, iv.end_us);
    } else if (IsCompCategory(iv.category)) {
      comp.emplace_back(iv.start_us, iv.end_us);
    }
  }
  return IntersectLength(std::move(comm), std::move(comp));
}

double Timeline::HiddenCommFraction() const {
  std::vector<std::pair<double, double>> comm;
  for (const auto& iv : intervals_) {
    if (IsCommCategory(iv.category)) {
      comm.emplace_back(iv.start_us, iv.end_us);
    }
  }
  const double comm_union = UnionLength(comm);
  if (comm_union <= 0.0) {
    return 0.0;
  }
  return CommCompOverlap() / comm_union;
}

std::string Timeline::BreakdownString() const {
  AsciiTable table({"category", "busy (ms)"});
  for (OpCategory c :
       {OpCategory::kGating, OpCategory::kLayer0Comm, OpCategory::kLayer0Comp,
        OpCategory::kActivation, OpCategory::kLayer1Comp,
        OpCategory::kLayer1Comm, OpCategory::kHost, OpCategory::kAttention,
        OpCategory::kOther}) {
    const double busy = CategoryBusy(c);
    if (busy > 0.0) {
      table.AddRow({OpCategoryName(c), FormatUsAsMs(busy)});
    }
  }
  std::ostringstream os;
  os << table.Render();
  os << "span: " << FormatUsAsMs(Span()) << " ms, hidden comm: "
     << FormatPercent(HiddenCommFraction()) << "\n";
  return os.str();
}

}  // namespace comet
