// Timeline recording and breakdown reports.
//
// Every executor (COMET and all baselines) emits labelled intervals into a
// Timeline. The benches derive the paper's plots from it: per-category busy
// time (Figure 11's breakdown), overlapped communication fraction (the
// "Comet hides 86.5% of communication latency" claim), and end-to-end spans.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace comet {

// Work categories matching the paper's Figure 11 legend.
enum class OpCategory {
  kGating,
  kLayer0Comm,
  kLayer0Comp,
  kActivation,
  kLayer1Comp,
  kLayer1Comm,
  kHost,       // host-side kernel launch / framework overhead
  kAttention,  // non-MoE layers in end-to-end runs
  kOther,
};

std::string OpCategoryName(OpCategory category);
bool IsCommCategory(OpCategory category);
bool IsCompCategory(OpCategory category);

struct TimeInterval {
  std::string label;
  OpCategory category = OpCategory::kOther;
  int lane = 0;  // visual/logical lane, e.g. stream id or block-group id
  double start_us = 0.0;
  double end_us = 0.0;

  double Duration() const { return end_us - start_us; }
};

class Timeline {
 public:
  void Add(TimeInterval interval);
  void Add(std::string label, OpCategory category, int lane, double start_us,
           double end_us);

  // Appends all intervals of `other`, shifted by `offset_us`.
  void Merge(const Timeline& other, double offset_us = 0.0);

  // Forgets every interval but keeps capacity: the executors rebuild their
  // timeline into the same storage every iteration (all interval labels fit
  // SSO, so refilling within capacity is allocation-free).
  void Clear() { intervals_.clear(); }

  const std::vector<TimeInterval>& intervals() const { return intervals_; }
  bool empty() const { return intervals_.empty(); }

  // Earliest start / latest end over all intervals (0 when empty).
  double SpanStart() const;
  double SpanEnd() const;
  double Span() const { return SpanEnd() - SpanStart(); }

  // Sum of durations of intervals in `category` (may double-count parallel
  // lanes; use UnionTime for wall-clock questions).
  double CategoryBusy(OpCategory category) const;

  // Length of the union of intervals in `category` (wall-clock time during
  // which at least one such interval is active).
  double UnionTime(OpCategory category) const;

  // Wall-clock time during which at least one comm interval AND at least one
  // comp interval are simultaneously active: the overlapped communication.
  double CommCompOverlap() const;

  // Fraction of communication wall-clock hidden behind computation:
  // overlap / union(comm). Returns 0 when there is no communication.
  double HiddenCommFraction() const;

  // Compact textual report of per-category busy times.
  std::string BreakdownString() const;

 private:
  std::vector<TimeInterval> intervals_;
};

}  // namespace comet
