#include "sim/trace_export.h"

#include <fstream>
#include <sstream>

#include "util/check.h"

namespace comet {
namespace {

// Minimal JSON string escaping: our labels are ASCII identifiers, but be
// safe about quotes/backslashes/control characters anyway.
std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string ToChromeTraceJson(const Timeline& timeline,
                              const std::string& process_name) {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
        "\"args\":{\"name\":\""
     << EscapeJson(process_name) << "\"}}";
  for (const TimeInterval& iv : timeline.intervals()) {
    // Lane -1 (host) maps to tid 0; device lanes start at 1.
    const int tid = iv.lane + 2;
    os << ",{\"name\":\"" << EscapeJson(iv.label) << "\",\"cat\":\""
       << EscapeJson(OpCategoryName(iv.category)) << "\",\"ph\":\"X\""
       << ",\"ts\":" << iv.start_us << ",\"dur\":" << iv.Duration()
       << ",\"pid\":1,\"tid\":" << tid << "}";
  }
  os << "]}";
  return os.str();
}

void WriteChromeTrace(const Timeline& timeline, const std::string& path,
                      const std::string& process_name) {
  std::ofstream file(path, std::ios::trunc);
  COMET_CHECK(file.good()) << "cannot open trace file " << path;
  file << ToChromeTraceJson(timeline, process_name);
  COMET_CHECK(file.good()) << "failed writing trace file " << path;
}

}  // namespace comet
