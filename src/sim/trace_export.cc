#include "sim/trace_export.h"

#include <fstream>
#include <sstream>

#include "util/check.h"
#include "util/json_writer.h"

namespace comet {

std::string ToChromeTraceJson(const Timeline& timeline,
                              const std::string& process_name) {
  // Field order within each event is fixed (name, cat, ph, ts, dur, pid,
  // tid) and all string payloads go through the shared JsonEscape, so the
  // emitted bytes are a pure function of the timeline contents.
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
        "\"args\":{\"name\":\""
     << JsonEscape(process_name) << "\"}}";
  for (const TimeInterval& iv : timeline.intervals()) {
    // Lane -1 (host) maps to tid 0; device lanes start at 1.
    const int tid = iv.lane + 2;
    os << ",{\"name\":\"" << JsonEscape(iv.label) << "\",\"cat\":\""
       << JsonEscape(OpCategoryName(iv.category)) << "\",\"ph\":\"X\""
       << ",\"ts\":" << iv.start_us << ",\"dur\":" << iv.Duration()
       << ",\"pid\":1,\"tid\":" << tid << "}";
  }
  os << "]}";
  return os.str();
}

void WriteChromeTrace(const Timeline& timeline, const std::string& path,
                      const std::string& process_name) {
  std::ofstream file(path, std::ios::trunc);
  COMET_CHECK(file.good()) << "cannot open trace file " << path;
  file << ToChromeTraceJson(timeline, process_name);
  COMET_CHECK(file.good()) << "failed writing trace file " << path;
}

}  // namespace comet
