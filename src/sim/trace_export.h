// Chrome-trace (chrome://tracing / Perfetto) export of simulator timelines.
//
// Every executor emits a Timeline; exporting it as a Trace Event Format JSON
// lets users inspect the fine-grained overlap visually -- which tiles ran
// while which token transfers were in flight, where the division point left
// bubbles. Events are complete events ("ph":"X") with microsecond
// timestamps; lanes map to Chrome thread ids, categories to event
// categories.
#pragma once

#include <string>

#include "sim/timeline.h"

namespace comet {

// Serializes the timeline as a Trace Event Format JSON string (the
// {"traceEvents": [...]} envelope form).
std::string ToChromeTraceJson(const Timeline& timeline,
                              const std::string& process_name = "comet");

// Writes ToChromeTraceJson to `path`. Throws CheckError on I/O failure.
void WriteChromeTrace(const Timeline& timeline, const std::string& path,
                      const std::string& process_name = "comet");

}  // namespace comet
