#include "sim/stream_sim.h"

#include <algorithm>

#include "util/check.h"

namespace comet {

StreamSim::StreamSim(double launch_overhead_us, double start_us)
    : launch_overhead_us_(launch_overhead_us), host_time_us_(start_us) {
  COMET_CHECK_GE(launch_overhead_us_, 0.0);
}

int StreamSim::AddStream(const std::string& name) {
  stream_free_us_.push_back(host_time_us_);
  stream_names_.push_back(name);
  return static_cast<int>(stream_free_us_.size()) - 1;
}

KernelId StreamSim::Launch(int stream, std::string label, OpCategory category,
                           double duration_us,
                           const std::vector<KernelId>& deps) {
  COMET_CHECK_GE(stream, 0);
  COMET_CHECK_LT(static_cast<size_t>(stream), stream_free_us_.size());
  COMET_CHECK_GE(duration_us, 0.0);

  // Host pays the launch overhead before the kernel may start.
  const double issue_begin = host_time_us_;
  host_time_us_ += launch_overhead_us_;
  if (launch_overhead_us_ > 0.0) {
    timeline_.Add("launch:" + label, OpCategory::kHost, -1, issue_begin,
                  host_time_us_);
  }

  double start = std::max(host_time_us_, stream_free_us_[static_cast<size_t>(stream)]);
  for (KernelId dep : deps) {
    COMET_CHECK_GE(dep, 0);
    COMET_CHECK_LT(static_cast<size_t>(dep), kernel_end_.size())
        << "dependency on a not-yet-launched kernel";
    start = std::max(start, kernel_end_[static_cast<size_t>(dep)]);
  }
  const double end = start + duration_us;
  stream_free_us_[static_cast<size_t>(stream)] = end;

  kernel_start_.push_back(start);
  kernel_end_.push_back(end);
  timeline_.Add(std::move(label), category, stream, start, end);
  return static_cast<KernelId>(kernel_end_.size()) - 1;
}

void StreamSim::HostWork(std::string label, double duration_us) {
  COMET_CHECK_GE(duration_us, 0.0);
  const double begin = host_time_us_;
  host_time_us_ += duration_us;
  timeline_.Add(std::move(label), OpCategory::kHost, -1, begin, host_time_us_);
}

double StreamSim::KernelEnd(KernelId id) const {
  COMET_CHECK_GE(id, 0);
  COMET_CHECK_LT(static_cast<size_t>(id), kernel_end_.size());
  return kernel_end_[static_cast<size_t>(id)];
}

double StreamSim::KernelStart(KernelId id) const {
  COMET_CHECK_GE(id, 0);
  COMET_CHECK_LT(static_cast<size_t>(id), kernel_start_.size());
  return kernel_start_[static_cast<size_t>(id)];
}

double StreamSim::Finish() const {
  double t = host_time_us_;
  for (double end : kernel_end_) {
    t = std::max(t, end);
  }
  return t;
}

}  // namespace comet
