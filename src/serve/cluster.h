// Cluster-scale serving: N MoeServer replicas behind one global dispatcher,
// on one global simulated clock -- now with a full recovery plane.
//
// Each replica is a full serving plane of its own -- executor, symmetric
// heap, EP group, admission queue, continuous batcher -- constructed from
// the same ServeOptions (same seed => same weights: replicas of one model).
// The cluster advances a single event loop; at every scheduling point it
//  A. fires due FaultPlan events (fail / drain / wedge / corrupt /
//     recover); a kRecover replica is rebuilt from scratch (fresh executor,
//     heap, EP group, COLD profile cache) and re-enters the accepting set
//     after ClusterOptions::recovery_warmup_us;
//  B. retires replica iterations whose simulated end time has been reached
//     (a replica that was failed mid-iteration dies here: the in-flight
//     iteration stands, then its remaining requests are drained). Newly
//     completed requests are observed here; under hedging, the FIRST
//     observed completion of a request wins and every other copy is
//     cancelled wherever it is (queued, live, or completed-unobserved),
//     with its executed tokens charged to wasted_tokens;
//  C. dispatches work: due backoff retries and recovered requests first
//     (admission order preserved), then arrivals with arrival_us <= now,
//     each through the placement policy to exactly one accepting replica
//     (none accepting => counted shed / failed_in_flight /
//     retries_exhausted, never silently dropped); then hedges: a request
//     still queue-waiting after hedge_queue_wait_us gets one speculative
//     second copy on the least-loaded other eligible replica;
//  D. starts one iteration on every alive idle replica with work, in
//     replica-index order;
//  E. advances the clock to the next event (iteration end, arrival, fault,
//     retry due time, warm-up end, breaker probe time, hedge deadline) --
//     or terminates when none remain.
//
// Health-aware placement: a per-replica failure EWMA feeds a circuit
// breaker (serve/health.h). A dead/wedged/corrupted replica force-opens its
// breaker; a flapping one opens on the EWMA threshold. Every placement
// policy consults the breaker through the accepting set it is handed, and
// an open breaker re-admits traffic through bounded half-open probes with
// deterministic exponential backoff.
//
// Determinism: the loop is single-threaded and every step is a pure
// function of (arrivals, options) -- replica numerics are bit-identical at
// any executor thread count, iteration durations are simulated, p2c
// placement and retry jitter draw from their own seeded streams, breaker
// trajectories are RNG-free. Same seed + config + fault plan =>
// bit-identical per-request digests, identical percentiles, identical
// dispatch/fault/retry/hedge interleavings, at COMET_THREADS=1 or 8 -- and
// because request outputs depend only on (request seed, weights), a
// retried or hedged request's digest equals the no-fault run's: faults
// change latency, never bits. A 1-replica cluster drives exactly the hooks
// the single-server Serve loop drives, in the same order: its report
// matches MoeServer::Serve bit for bit.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hw/gpu_spec.h"
#include "obs/exporters.h"
#include "obs/telemetry.h"
#include "serve/fault_plan.h"
#include "serve/health.h"
#include "serve/placement.h"
#include "serve/server.h"

namespace comet {

struct ClusterOptions {
  // Per-replica serving config (model, parallel, dtype, budgets, SLO).
  ServeOptions server;
  int replicas = 1;
  PlacementPolicy placement = PlacementPolicy::kRoundRobin;
  // Seed of the dispatcher's own random stream (kPowerOfTwo sampling);
  // independent of the load and weight seeds.
  uint64_t placement_seed = 1;
  FaultPlan faults;
  InFlightPolicy in_flight = InFlightPolicy::kRedispatch;
  // Global admission bound: when > 0, an arrival is shed outright if the
  // sum of LoadTokens() over live replicas is already >= this. 0 disables.
  int64_t global_queue_tokens = 0;

  // ---- recovery plane ------------------------------------------------------
  // Simulated warm-up a kRecover replica pays before re-entering the
  // accepting set (cold caches, reloaded weights). >= 0.
  double recovery_warmup_us = 0.0;
  // kRetryBackoff: retries allowed per request beyond its first dispatch
  // (>= 0; 0 = a failed in-flight request is immediately retries_exhausted).
  int retry_budget = 2;
  // Backoff before the k-th retry (k = 1, 2, ...):
  //   retry_backoff_us * 2^(k-1) * (1 + retry_jitter_frac * U)
  // with U drawn per retry from the dedicated retry stream (retry_seed) --
  // seeded jitter on the SIMULATED clock, deterministic at any thread
  // count. retry_backoff_us > 0; retry_jitter_frac in [0, 1].
  double retry_backoff_us = 500.0;
  double retry_jitter_frac = 0.5;
  uint64_t retry_seed = 11;
  // Hedged dispatch: when > 0, a request that has waited this long without
  // starting execution gets ONE speculative second copy on the least-loaded
  // other eligible replica; first completion wins, the loser is cancelled
  // and its executed tokens counted as wasted_tokens. 0 disables.
  double hedge_queue_wait_us = 0.0;
  // Health-aware placement (circuit breaker; see serve/health.h). With
  // health off, eligibility is the accepting set alone (PR 6 behavior).
  bool health_enabled = true;
  HealthOptions health;

  // Record a DispatchDecision per dispatch (and per dispatch-level shed)
  // for the property tests.
  bool record_dispatch_log = false;
};

struct ClusterReport {
  // Completed requests from every replica, merged, in request-id order.
  std::vector<RequestRecord> completed;
  int64_t offered = 0;      // arrivals presented to the cluster
  int64_t dispatched = 0;   // handed to some replica (incl. re-dispatches)
  // Requests that never completed, partitioned exactly:
  // offered == completed + shed + failed_in_flight + retries_exhausted.
  int64_t shed = 0;
  int64_t failed_in_flight = 0;
  int64_t retries_exhausted = 0;
  int64_t redispatched = 0;
  // kRetryBackoff re-dispatch attempts actually made (sum of per-request
  // retry counts).
  int64_t retries = 0;
  // Requests that received a speculative second copy / that completed on
  // the hedge copy rather than the primary.
  int64_t hedged = 0;
  int64_t hedge_wins = 0;
  // Tokens executed on copies that lost (hedging losers, and completed
  // work discarded when a replica died mid-request is NOT counted here --
  // that work is retried or lost per InFlightPolicy).
  int64_t wasted_tokens = 0;
  int64_t iterations = 0;
  int64_t batched_tokens = 0;
  int64_t padding_tokens = 0;
  // Adaptation plane, summed over replicas (see ServeReport): hot-expert
  // replicas promoted/retired, and rows served from replica slices.
  int64_t promotions = 0;
  int64_t retirements = 0;
  int64_t replicated_rows = 0;
  int64_t replica_failures = 0;
  int64_t replicas_drained = 0;
  int64_t replicas_recovered = 0;
  // Replica failures whose root cause was a detected transport-integrity
  // violation (checksum mismatch out of the symmetric heap).
  int64_t corruptions_detected = 0;
  // Circuit-breaker transitions: closed->open openings, and half-open
  // probe dispatches.
  int64_t breaker_opens = 0;
  int64_t probes = 0;
  std::vector<int64_t> per_replica_completed;
  std::vector<int64_t> per_replica_iterations;
  double sim_duration_us = 0.0;
  double throughput_tokens_per_s = 0.0;

  LatencySummary queue_wait_us;
  LatencySummary ttft_us;
  LatencySummary itl_us;
  LatencySummary e2e_us;

  // met / (completed + shed + failed_in_flight + retries_exhausted); 1.0
  // when no SLO is configured. Lost and shed requests are violations by
  // definition.
  double slo_attainment = 1.0;
  int64_t slo_violations = 0;

  // FNV-1a over per-request output digests in id order -- same formula as
  // ServeReport, so cluster-vs-single digests are directly comparable.
  uint64_t combined_digest = 0;

  // Populated when ClusterOptions::record_dispatch_log.
  std::vector<DispatchDecision> dispatch_log;
};

class MoeCluster {
 public:
  // `replica_cluster` is the hardware spec of ONE replica's EP group; every
  // replica gets a copy (a homogeneous fleet).
  MoeCluster(ClusterOptions options, ClusterSpec replica_cluster);
  ~MoeCluster();

  // Runs the fleet over `arrivals` (sorted by arrival_us) to completion.
  // Reusable: each call is an independent run.
  ClusterReport Run(const std::vector<RequestSpec>& arrivals);
  ClusterReport Run(LoadGenerator& loadgen);

  const ClusterOptions& options() const { return options_; }
  int num_replicas() const { return static_cast<int>(replicas_.size()); }
  const MoeServer& replica(int r) const { return *replicas_.at(r); }

  // Telemetry views over the whole fleet, cluster-level source first, then
  // one per replica slot (archived spans from replaced incarnations
  // included). Valid after Run; the Export methods render them (see
  // obs/exporters.h for the formats).
  std::vector<obs::ReplicaTelemetry> TelemetryViews() const;
  std::string ExportChromeTrace() const;
  std::string ExportPrometheusText() const;
  std::string ExportTelemetryJsonl() const;

 private:
  ClusterOptions options_;
  // Kept so kRecover can rebuild a replica from scratch mid-run.
  ClusterSpec replica_cluster_;
  std::vector<std::unique_ptr<MoeServer>> replicas_;
  // Cluster-level telemetry: the dispatcher's own registry + event ring
  // (fault/dispatch/retry/hedge/breaker instants, each record carrying its
  // replica for trace attribution), plus per-slot span archives carried
  // over from kRecover-replaced incarnations.
  obs::MetricsRegistry cluster_registry_;
  obs::ClusterMetrics cluster_metrics_;
  obs::SpanRing cluster_events_;
  std::vector<std::vector<obs::SpanRecord>> archived_spans_;
};

}  // namespace comet
