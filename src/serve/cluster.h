// Cluster-scale serving: N MoeServer replicas behind one global dispatcher,
// on one global simulated clock.
//
// Each replica is a full serving plane of its own -- executor, symmetric
// heap, EP group, admission queue, continuous batcher -- constructed from
// the same ServeOptions (same seed => same weights: replicas of one model).
// The cluster advances a single event loop; at every scheduling point it
//  A. fires due FaultPlan events (fail / drain / wedge);
//  B. retires replica iterations whose simulated end time has been reached
//     (a replica that was failed mid-iteration dies here: the in-flight
//     iteration stands, then its remaining requests are drained);
//  C. dispatches work: recovered requests from failed replicas first (when
//     InFlightPolicy::kRedispatch), then arrivals with arrival_us <= now,
//     each through the placement policy to exactly one accepting replica
//     (none accepting => counted shed / failed_in_flight, never silently
//     dropped);
//  D. starts one iteration on every alive idle replica with work, in
//     replica-index order;
//  E. advances the clock to the next event (iteration end, arrival, or
//     fault) -- or terminates when none remain.
//
// Determinism: the loop is single-threaded and every step is a pure
// function of (arrivals, options) -- replica numerics are bit-identical at
// any executor thread count, iteration durations are simulated, p2c
// placement draws from its own seeded stream. Same seed + config =>
// bit-identical per-request digests, identical percentiles, identical
// dispatch and fault interleavings, at COMET_THREADS=1 or 8. A 1-replica
// cluster drives exactly the hooks the single-server Serve loop drives, in
// the same order: its report matches MoeServer::Serve bit for bit.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "hw/gpu_spec.h"
#include "serve/fault_plan.h"
#include "serve/placement.h"
#include "serve/server.h"

namespace comet {

struct ClusterOptions {
  // Per-replica serving config (model, parallel, dtype, budgets, SLO).
  ServeOptions server;
  int replicas = 1;
  PlacementPolicy placement = PlacementPolicy::kRoundRobin;
  // Seed of the dispatcher's own random stream (kPowerOfTwo sampling);
  // independent of the load and weight seeds.
  uint64_t placement_seed = 1;
  FaultPlan faults;
  InFlightPolicy in_flight = InFlightPolicy::kRedispatch;
  // Global admission bound: when > 0, an arrival is shed outright if the
  // sum of LoadTokens() over live replicas is already >= this. 0 disables.
  int64_t global_queue_tokens = 0;
  // Record a DispatchDecision per dispatch (and per dispatch-level shed)
  // for the property tests.
  bool record_dispatch_log = false;
};

struct ClusterReport {
  // Completed requests from every replica, merged, in request-id order.
  std::vector<RequestRecord> completed;
  int64_t offered = 0;      // arrivals presented to the cluster
  int64_t dispatched = 0;   // handed to some replica (incl. re-dispatches)
  // Requests that never completed: shed at dispatch or by a replica queue,
  // or lost in flight on a failed replica.
  int64_t shed = 0;
  int64_t failed_in_flight = 0;
  int64_t redispatched = 0;
  int64_t iterations = 0;
  int64_t batched_tokens = 0;
  int64_t padding_tokens = 0;
  int64_t replica_failures = 0;
  int64_t replicas_drained = 0;
  std::vector<int64_t> per_replica_completed;
  std::vector<int64_t> per_replica_iterations;
  double sim_duration_us = 0.0;
  double throughput_tokens_per_s = 0.0;

  LatencySummary queue_wait_us;
  LatencySummary ttft_us;
  LatencySummary itl_us;
  LatencySummary e2e_us;

  // met / (completed + shed + failed_in_flight); 1.0 when no SLO is
  // configured. Lost and shed requests are violations by definition.
  double slo_attainment = 1.0;
  int64_t slo_violations = 0;

  // FNV-1a over per-request output digests in id order -- same formula as
  // ServeReport, so cluster-vs-single digests are directly comparable.
  uint64_t combined_digest = 0;

  // Populated when ClusterOptions::record_dispatch_log.
  std::vector<DispatchDecision> dispatch_log;
};

class MoeCluster {
 public:
  // `replica_cluster` is the hardware spec of ONE replica's EP group; every
  // replica gets a copy (a homogeneous fleet).
  MoeCluster(ClusterOptions options, ClusterSpec replica_cluster);
  ~MoeCluster();

  // Runs the fleet over `arrivals` (sorted by arrival_us) to completion.
  // Reusable: each call is an independent run.
  ClusterReport Run(const std::vector<RequestSpec>& arrivals);
  ClusterReport Run(LoadGenerator& loadgen);

  const ClusterOptions& options() const { return options_; }
  int num_replicas() const { return static_cast<int>(replicas_.size()); }
  const MoeServer& replica(int r) const { return *replicas_.at(r); }

 private:
  ClusterOptions options_;
  std::vector<std::unique_ptr<MoeServer>> replicas_;
};

}  // namespace comet
