#include "serve/server.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "comm/symmetric_heap.h"
#include "moe/expert_weights.h"
#include "moe/workload.h"
#include "util/arena.h"
#include "util/check.h"

namespace comet {

namespace {

// Gate logits scale ~1 for unit-variance tokens: stddev = 1/sqrt(N).
Tensor MakeGateWeight(const ServeOptions& options) {
  Rng rng(options.seed + 23);
  const float stddev =
      1.0f / std::sqrt(static_cast<float>(options.model.embedding));
  return Tensor::Randn(
      Shape{options.model.embedding, options.model.num_experts}, rng, stddev,
      DType::kF32);
}

std::shared_ptr<const ExpertWeights> MakeWeights(const ServeOptions& options) {
  // Same derivation as MakeWorkload (seed + 17), so a serving run at seed S
  // executes the weights a workload at seed S would.
  Rng rng(options.seed + 17);
  return std::make_shared<ExpertWeights>(
      ExpertWeights::Random(options.model, rng, 0.05f, options.dtype));
}

CometOptions MakeExecutorOptions(const ServeOptions& options) {
  CometOptions comet;
  comet.compute_dtype = options.dtype;
  comet.num_threads = options.num_threads;
  comet.signal_wait_timeout_ms = options.signal_wait_timeout_ms;
  comet.verify_transport = options.verify_transport;
  // Replica slots only exist when adaptation can use them: disabled
  // adaptation compiles the replica path out of the executor's plans and
  // workspaces, keeping the served bits byte-identical to a server without
  // the adaptation plane.
  comet.max_replicated_experts =
      options.adaptation.enabled ? options.adaptation.max_replicated_experts
                                 : 0;
  comet.tile_m = options.granularity;
  comet.name_override = "Comet-serve";
  return comet;
}

int ServeMaxReplicas(const ServeOptions& options) {
  return options.adaptation.enabled ? options.adaptation.max_replicated_experts
                                    : 0;
}

// Largest per-iteration global token matrix: token_budget rounded up to a
// multiple of EP (the padding the batch builder adds). Every iteration
// workspace is reserved at this bound.
int64_t MaxPaddedTokens(const ServeOptions& options) {
  const int64_t ep = options.parallel.ep;
  return (options.token_budget + ep - 1) / ep * ep;
}

// Stream tag separating a request's decode perturbation draws from its
// prompt-content draws (which use the seed directly).
constexpr uint64_t kDecodeStream = 0xdec0de5eed0c0deULL;
// Stream tag for the one-shot corruption injector's heap seed.
constexpr uint64_t kCorruptStream = 0xbadb17f11b5eed5ULL;
// Stream tag for the synthetic router's load-vector and sampling draws,
// keeping them independent of the weight/gate/decode streams.
constexpr uint64_t kSyntheticStream = 0x5c13f1c5eedf00dULL;

}  // namespace

// Pooled: a released LiveRequest keeps the capacity of its prompt tensor,
// decode row and ITL sample vector, so re-admission through the pool stops
// allocating once those capacities reach the workload's high-water mark.
struct MoeServer::LiveRequest {
  RequestSpec spec;
  Tensor prompt;                    // (prompt_tokens, N) at the serve dtype
  std::vector<float> decode_input;  // next decode row, representable at dtype
  Rng decode_rng{0};
  double first_scheduled_us = -1.0;
  double first_token_us = -1.0;
  double last_token_us = -1.0;
  // Tokens of this request already executed here (wasted work if the
  // request is cancelled as a hedging loser).
  int64_t executed_tokens = 0;
  std::vector<double> itl_samples;
  uint64_t digest = Fnv1aInit();

  // Re-initializes a pooled object for a fresh admission. The prompt fill
  // consumes the content rng exactly like Tensor::Randn, so a pooled and a
  // freshly-constructed request hold bit-identical prompts.
  void Reset(const RequestSpec& s, int64_t n_embed, DType dtype) {
    spec = s;
    Rng content_rng(s.seed);
    prompt.ResetFormat2D(s.prompt_tokens, n_embed, dtype);
    prompt.FillRandn(content_rng, 1.0f);
    // Emptiness of decode_input is the "prefill not finished" marker; clear()
    // keeps the capacity.
    decode_input.clear();
    decode_rng = Rng(s.seed ^ kDecodeStream);
    first_scheduled_us = -1.0;
    first_token_us = -1.0;
    last_token_us = -1.0;
    executed_tokens = 0;
    itl_samples.clear();
    digest = Fnv1aInit();
  }
};

// All per-run state, recreated by BeginRun so a MoeServer (and each cluster
// replica) is reusable across independent serving runs. The constructor is
// the warm-up phase of the zero-allocation contract: every iteration-path
// container is reserved here at its run-level bound (token_budget,
// max_active, queue_capacity, the caller's expected-request hints), so the
// steady-state StepIteration only reuses capacity.
struct MoeServer::RunState {
  RunState(const ServeOptions& options,
           std::shared_ptr<const ExpertWeights> weights,
           std::shared_ptr<const ShardedExpertWeights> sharded,
           const RunBounds& bounds)
      : queue(options.queue_capacity, options.queue_policy),
        batcher(BatcherOptions{.token_budget = options.token_budget,
                               .max_active = options.max_active}),
        tracker(options.adaptation, options.model.num_experts,
                options.parallel.ep) {
    const int64_t ep = options.parallel.ep;
    const int64_t n_embed = options.model.embedding;
    const int64_t padded_max = MaxPaddedTokens(options);
    const int64_t per_group_max = padded_max / ep;
    // Live requests are bounded by max_active; an unbounded batcher
    // (max_active == 0) falls back to the caller's hint or the queue bound.
    const int64_t live_bound =
        options.max_active > 0
            ? options.max_active
            : std::max(bounds.expected_requests, options.queue_capacity);
    pool.Reserve(static_cast<size_t>(live_bound));
    // Warm every pooled LiveRequest at the per-request bounds, so admission
    // never grows a pooled object's internal buffers mid-run.
    {
      std::vector<LiveRequest*> all;
      all.reserve(static_cast<size_t>(live_bound));
      for (int64_t i = 0; i < live_bound; ++i) {
        all.push_back(pool.Acquire());
      }
      for (LiveRequest* lr : all) {
        lr->prompt.Reserve(bounds.max_prompt_tokens * n_embed);
        lr->decode_input.reserve(static_cast<size_t>(n_embed));
        lr->itl_samples.reserve(static_cast<size_t>(bounds.max_decode_tokens));
        pool.Release(lr);
      }
    }
    batcher.Reserve(std::max(bounds.expected_requests, live_bound));
    by_slot.reserve(
        static_cast<size_t>(std::max(bounds.expected_requests, live_bound)));

    // Iteration workspaces: every entry carries >= 1 token, so a plan never
    // exceeds token_budget entries.
    plan.entries.reserve(static_cast<size_t>(options.token_budget));
    live.reserve(static_cast<size_t>(options.token_budget));
    rows.reserve(static_cast<size_t>(options.token_budget));
    finished.reserve(static_cast<size_t>(live_bound));
    global.Reserve(padded_max * n_embed);

    workload.placement = Placement(options.model, options.parallel, padded_max);
    // A single expert can receive at most one (token, expert) pair per token
    // (experts within a route are distinct). With adaptation on, every group
    // additionally carries max_replicated_experts permanent replica slices.
    workload.plan.Reserve(workload.placement, padded_max,
                          ServeMaxReplicas(options));
    workload.routing.tokens.reserve(static_cast<size_t>(padded_max));
    workload.inputs.resize(static_cast<size_t>(ep));
    for (Tensor& t : workload.inputs) {
      t.Reserve(per_group_max * n_embed);
    }
    workload.weights = std::move(weights);
    workload.sharded_weights = std::move(sharded);
    workload.activation = ActivationKind::kGelu;
    gate_scratch.logits.reserve(
        static_cast<size_t>(options.model.num_experts));
    gate_scratch.probs.reserve(static_cast<size_t>(options.model.num_experts));
    expert_loads.reserve(static_cast<size_t>(options.model.num_experts));
    if (options.routing == ServeRoutingMode::kSynthetic) {
      // The load vector and the router's sampling stream both derive from
      // the synthetic tag; distinct sub-seeds keep them independent.
      Rng load_rng((options.seed ^ kSyntheticStream) + 1);
      synth.emplace(
          load_rng.LoadVectorWithStd(
              static_cast<size_t>(options.model.num_experts),
              options.synthetic_load_std),
          options.seed ^ kSyntheticStream);
    }

    completed.reserve(static_cast<size_t>(bounds.expected_requests));
    queue_waits.reserve(static_cast<size_t>(bounds.expected_requests));
    ttfts.reserve(static_cast<size_t>(bounds.expected_requests));
    e2es.reserve(static_cast<size_t>(bounds.expected_requests));
    itl_counts.reserve(static_cast<size_t>(bounds.expected_requests));
    itls.reserve(static_cast<size_t>(bounds.expected_tokens));
  }

  AdmissionQueue queue;
  ContinuousBatcher batcher;
  // Slot -> live request (pool-owned; nullptr once retired/cancelled).
  util::FixedPool<LiveRequest> pool;
  std::vector<LiveRequest*> by_slot;

  // Persistent iteration workspaces (capacity reused every StepIteration).
  BatchPlan plan;
  std::vector<LiveRequest*> live;  // plan.entries[e] -> its live request
  std::vector<int64_t> rows;       // plan.entries[e] -> global row offset
  std::vector<int64_t> finished;
  Tensor global;  // gathered (padded, N) token matrix
  GateScratch gate_scratch;
  MoeWorkload workload;
  LayerExecution ex;

  // Adaptation plane. The tracker is constructed even when adaptation is
  // disabled (cheap; Observe is then never called). `synth` exists only in
  // kSynthetic routing mode.
  HotExpertTracker tracker;
  std::vector<int64_t> expert_loads;  // per-iteration EWMA input
  std::optional<SyntheticRouter> synth;
  int64_t promotions = 0;
  int64_t retirements = 0;
  int64_t replicated_rows = 0;

  std::vector<RequestRecord> completed;  // retirement order
  std::vector<double> queue_waits, ttfts, itls, e2es;
  // itl_counts[i] = number of itl samples request completed[i] contributed
  // (aligned with `completed`), so CancelRequest of a completed-but-
  // unobserved hedging loser can excise exactly its slice of `itls`.
  std::vector<int64_t> itl_counts;
  int64_t offered = 0;
  int64_t shed = 0;
  int64_t iterations = 0;
  int64_t batched_tokens = 0;
  int64_t padding_tokens = 0;
  // Telemetry delta baselines: the executor's memo/heap totals accumulate
  // across runs (the serving heap persists in PrepareServing state), so the
  // per-iteration counter updates publish deltas against the last sample.
  // Baselined by BeginRun, advanced by RecordIterationTelemetry.
  uint64_t prev_profile_hits = 0;
  uint64_t prev_profile_misses = 0;
  double prev_heap_traffic = 0.0;
  uint64_t prev_rows_verified = 0;
  uint64_t prev_rows_corrupted = 0;
  int64_t prev_promotions = 0;
  int64_t prev_retirements = 0;
  int64_t prev_replicated_rows = 0;
  // Remaining (not yet executed) tokens of the batcher's live requests;
  // together with queue.queued_tokens() this is the replica's load signal.
  int64_t batcher_tokens = 0;
  bool wedge_next = false;
  bool corrupt_next = false;
};

MoeServer::MoeServer(ServeOptions options, ClusterSpec cluster)
    : options_(std::move(options)),
      cluster_(std::move(cluster)),
      weights_(MakeWeights(options_)),
      sharded_weights_(std::make_shared<ShardedExpertWeights>(
          *weights_, options_.parallel.tp)),
      gate_(MakeGateWeight(options_)),
      executor_(MakeExecutorOptions(options_)),
      telemetry_(options_.telemetry) {
  COMET_CHECK_EQ(cluster_.world_size, options_.parallel.world())
      << "cluster and serving parallel config disagree";
  COMET_CHECK_GT(options_.token_budget, 0);
  COMET_CHECK_GE(options_.max_active, 0);
  COMET_CHECK_GE(options_.host_overhead_us, 0.0);
  COMET_CHECK_GT(options_.signal_wait_timeout_ms, 0)
      << "a non-positive wedge fail-fast bound cannot detect a dead producer";
  COMET_CHECK_GT(options_.granularity, 0)
      << "granularity is the serving executor's rows-per-chunk tile_m";
  options_.adaptation.Validate();
  COMET_CHECK_GE(options_.synthetic_load_std, 0.0);
  COMET_CHECK_GE(options_.drift_period_us, 0.0);
  if (options_.routing == ServeRoutingMode::kGate) {
    // Loud misconfiguration: synthetic knobs silently ignored would read as
    // "skew has no effect".
    COMET_CHECK_EQ(options_.synthetic_load_std, 0.0)
        << "synthetic_load_std requires routing == ServeRoutingMode::kSynthetic";
    COMET_CHECK_EQ(options_.drift_period_us, 0.0)
        << "drift_period_us requires routing == ServeRoutingMode::kSynthetic";
  }
  // Trips the model/parallel divisibility checks now, not at the first
  // batch, and preallocates the executor's serving workspaces (heap
  // buffers, rank threads, per-rank schedule/simulation scratch) at the
  // largest batch this server can pack.
  const Placement max_placement(options_.model, options_.parallel,
                                MaxPaddedTokens(options_));
  executor_.PrepareServing(max_placement, cluster_);
}

MoeServer::~MoeServer() = default;

void MoeServer::BuildBatchWorkloadInto(const BatchPlan& plan,
                                       const std::vector<LiveRequest*>& live,
                                       double now, RunState& run,
                                       int64_t* padding) {
  const ModelConfig& model = options_.model;
  const int64_t n_embed = model.embedding;
  const int ep = options_.parallel.ep;
  const int64_t total = plan.TotalTokens();
  COMET_CHECK_GT(total, 0);
  const int64_t padded = (total + ep - 1) / ep * ep;
  *padding = padded - total;

  // Gather every entry's rows into the persistent global token matrix; EP
  // padding rows are zeroed (representable at every dtype, routed by the
  // gate like any other token -- real serving pads exactly like this).
  Tensor& global = run.global;
  global.ResetFormat2D(padded, n_embed, options_.dtype);
  global.FillZeroRows(total, padded);
  run.rows.clear();
  int64_t offset = 0;
  for (size_t e = 0; e < plan.entries.size(); ++e) {
    const BatchEntry& entry = plan.entries[e];
    run.rows.push_back(offset);
    if (entry.decode) {
      COMET_CHECK_EQ(entry.num_tokens, 1);
      COMET_CHECK_EQ(static_cast<int64_t>(live[e]->decode_input.size()),
                     n_embed)
          << "decode step scheduled before its input row exists";
      global.SetRow(offset, live[e]->decode_input);
    } else {
      for (int64_t i = 0; i < entry.num_tokens; ++i) {
        global.SetRow(offset + i, live[e]->prompt.row(entry.start_pos + i));
      }
    }
    offset += entry.num_tokens;
  }

  // Re-point the persistent workload at this iteration's shape. Each of
  // these is the in-place, bit-identical twin of the construct-from-scratch
  // path (Placement ctor / GateNetwork::Route / RoutePlan ctor).
  MoeWorkload& w = run.workload;
  w.placement.ResetTotalTokens(padded);
  if (options_.routing == ServeRoutingMode::kSynthetic) {
    // Drift shift is a pure function of simulated time; applied after
    // sampling, so the rng stream is consumed identically at every phase.
    int64_t shift = 0;
    if (options_.drift_period_us > 0.0) {
      shift = static_cast<int64_t>(now / options_.drift_period_us) %
              options_.model.num_experts;
    }
    run.synth->RouteInto(padded, model.topk, shift, &w.routing);
  } else {
    gate_.RouteInto(global, model.topk, run.gate_scratch, &w.routing);
  }

  if (options_.adaptation.enabled) {
    // Close the adaptation loop: this iteration's expert loads update the
    // EWMA; promote/retire decisions apply to the executor (weight slab
    // copies) before the plan is rebuilt against the current replica set.
    // Every decision is a pure function of the seeded routing stream --
    // never wall-clock -- so adapted runs stay bit-deterministic.
    w.routing.ExpertLoadsInto(options_.model.num_experts, &run.expert_loads);
    if (run.tracker.Observe(run.expert_loads) > 0) {
      for (const HotExpertTracker::Event& ev : run.tracker.events()) {
        if (ev.promote) {
          executor_.PromoteReplica(ev.slot, ev.expert, ev.ep_group,
                                   w.placement, *sharded_weights_);
          ++run.promotions;
        } else {
          executor_.RetireReplica(ev.slot);
          ++run.retirements;
        }
        if (telemetry_.enabled()) {
          telemetry_.spans().Record(
              ev.promote ? obs::SpanKind::kPromote
                         : obs::SpanKind::kRetireReplica,
              now, now, static_cast<uint64_t>(ev.expert),
              static_cast<double>(ev.slot));
        }
      }
      // Live re-tune: cached division points were profiled against the old
      // replica layout (ProfileKey does not encode replicas); flush them so
      // each batch shape re-profiles against the plan it will execute.
      executor_.InvalidateBatchProfiles();
    }
    w.plan.Rebuild(w.placement, w.routing, run.tracker.replicas());
    run.replicated_rows += w.plan.ReplicaRows();
  } else {
    w.plan.Rebuild(w.placement, w.routing);
  }

  const int64_t per_group = w.placement.tokens_per_group();
  for (int g = 0; g < ep; ++g) {
    Tensor& t = w.inputs[static_cast<size_t>(g)];
    t.ResetFormat2D(per_group, n_embed, options_.dtype);
    for (int64_t r = 0; r < per_group; ++r) {
      t.SetRow(r, global.row(static_cast<int64_t>(g) * per_group + r));
    }
  }
}

void MoeServer::BeginRun(RunBounds bounds) {
  run_ = std::make_unique<RunState>(options_, weights_, sharded_weights_,
                                    bounds);
  telemetry_.BeginRun();
  // Baseline the cumulative executor/heap totals so this run's first delta
  // doesn't inherit a previous run's traffic.
  const CometExecutor::ServingHeapStats heap = executor_.serving_heap_stats();
  run_->prev_profile_hits = executor_.profile_memo_hits();
  run_->prev_profile_misses = executor_.profile_memo_misses();
  run_->prev_heap_traffic = heap.total_traffic_bytes;
  run_->prev_rows_verified = heap.rows_verified;
  run_->prev_rows_corrupted = heap.rows_corrupted;
}

AdmissionQueue::Admit MoeServer::Offer(const RequestSpec& spec) {
  COMET_CHECK(run_ != nullptr) << "Offer before BeginRun";
  ++run_->offered;
  const AdmissionQueue::Admit admit = run_->queue.TryPush(spec);
  if (!admit.admitted || admit.evicted.has_value()) {
    ++run_->shed;
  }
  if (telemetry_.enabled()) {
    obs::ServerMetrics& m = telemetry_.metrics();
    obs::SpanRing& spans = telemetry_.spans();
    m.requests_offered->Increment();
    const double t = spec.arrival_us;
    if (admit.admitted) {
      spans.Record(obs::SpanKind::kAdmit, t, t, static_cast<uint64_t>(spec.id),
                   static_cast<double>(spec.TotalTokens()));
    } else {
      m.requests_shed->Increment();
      spans.Record(obs::SpanKind::kShed, t, t, static_cast<uint64_t>(spec.id),
                   static_cast<double>(spec.TotalTokens()));
    }
    if (admit.evicted.has_value()) {
      m.requests_shed->Increment();
      spans.Record(obs::SpanKind::kShed, t, t,
                   static_cast<uint64_t>(admit.evicted->id),
                   static_cast<double>(admit.evicted->TotalTokens()));
    }
  }
  return admit;
}

bool MoeServer::HasWork() const {
  return run_ != nullptr &&
         (run_->queue.size() > 0 || run_->batcher.HasLiveWork());
}

int64_t MoeServer::LoadTokens() const {
  if (run_ == nullptr) {
    return 0;
  }
  return run_->queue.queued_tokens() + run_->batcher_tokens;
}

void MoeServer::WedgeNextIteration() {
  COMET_CHECK(run_ != nullptr) << "WedgeNextIteration before BeginRun";
  run_->wedge_next = true;
}

void MoeServer::CorruptNextIteration() {
  COMET_CHECK(run_ != nullptr) << "CorruptNextIteration before BeginRun";
  run_->corrupt_next = true;
}

MoeServer::CancelResult MoeServer::CancelRequest(int64_t id) {
  COMET_CHECK(run_ != nullptr) << "CancelRequest before BeginRun";
  RunState& run = *run_;
  CancelResult result;
  // Live in the batcher (possibly mid-execution)?
  for (size_t slot = 0; slot < run.by_slot.size(); ++slot) {
    LiveRequest* lr = run.by_slot[slot];
    if (lr == nullptr || lr->spec.id != id) {
      continue;
    }
    result.found = true;
    result.executed_tokens = lr->executed_tokens;
    run.batcher_tokens -= lr->spec.TotalTokens() - lr->executed_tokens;
    run.batcher.Cancel(static_cast<int64_t>(slot));
    run.pool.Release(lr);
    run.by_slot[slot] = nullptr;
    return result;
  }
  // Still queued?
  if (run.queue.Remove(id).has_value()) {
    result.found = true;
    return result;
  }
  // Completed but not yet observed by the cluster: the race a real hedging
  // layer has to handle -- both copies finished, the cluster picked the
  // other as winner. Discard this copy's record AND its latency samples so
  // the loser leaves no trace in any percentile.
  for (size_t i = 0; i < run.completed.size(); ++i) {
    if (run.completed[i].id != id) {
      continue;
    }
    result.found = true;
    result.was_completed = true;
    result.executed_tokens =
        run.completed[i].prompt_tokens + run.completed[i].decode_tokens;
    int64_t itl_begin = 0;
    for (size_t j = 0; j < i; ++j) {
      itl_begin += run.itl_counts[j];
    }
    run.itls.erase(
        run.itls.begin() + static_cast<std::ptrdiff_t>(itl_begin),
        run.itls.begin() +
            static_cast<std::ptrdiff_t>(itl_begin + run.itl_counts[i]));
    run.completed.erase(run.completed.begin() + static_cast<std::ptrdiff_t>(i));
    run.queue_waits.erase(run.queue_waits.begin() +
                          static_cast<std::ptrdiff_t>(i));
    run.ttfts.erase(run.ttfts.begin() + static_cast<std::ptrdiff_t>(i));
    run.e2es.erase(run.e2es.begin() + static_cast<std::ptrdiff_t>(i));
    run.itl_counts.erase(run.itl_counts.begin() +
                         static_cast<std::ptrdiff_t>(i));
    return result;
  }
  return result;
}

bool MoeServer::RequestStarted(int64_t id) const {
  COMET_CHECK(run_ != nullptr) << "RequestStarted before BeginRun";
  const RunState& run = *run_;
  for (const LiveRequest* lr : run.by_slot) {
    if (lr != nullptr && lr->spec.id == id) {
      return lr->first_scheduled_us >= 0.0;
    }
  }
  for (const RequestRecord& rec : run.completed) {
    if (rec.id == id) {
      return true;
    }
  }
  return false;
}

std::vector<RequestSpec> MoeServer::DrainInFlight() {
  COMET_CHECK(run_ != nullptr) << "DrainInFlight before BeginRun";
  std::vector<RequestSpec> in_flight;
  // Batcher live requests first (they were admitted earlier), slot order.
  for (LiveRequest*& lr : run_->by_slot) {
    if (lr != nullptr) {
      in_flight.push_back(lr->spec);
      run_->pool.Release(lr);
      lr = nullptr;
    }
  }
  // Then the queue, FIFO.
  while (const auto spec = run_->queue.TryPop()) {
    in_flight.push_back(*spec);
  }
  run_->batcher_tokens = 0;
  return in_flight;
}

RunView MoeServer::View() const {
  COMET_CHECK(run_ != nullptr) << "View before BeginRun";
  RunView view;
  view.completed = run_->completed;
  view.queue_waits = run_->queue_waits;
  view.ttfts = run_->ttfts;
  view.itls = run_->itls;
  view.e2es = run_->e2es;
  view.offered = run_->offered;
  view.shed = run_->shed;
  view.iterations = run_->iterations;
  view.batched_tokens = run_->batched_tokens;
  view.padding_tokens = run_->padding_tokens;
  view.promotions = run_->promotions;
  view.retirements = run_->retirements;
  view.replicated_rows = run_->replicated_rows;
  return view;
}

bool MoeServer::StepIteration(double now, double* end_us) {
  COMET_CHECK(run_ != nullptr) << "StepIteration before BeginRun";
  RunState& run = *run_;

  if (run.wedge_next) {
    // Fault injection: park in the genuine fail-fast signal wait. No
    // producer ever raises this signal, so the wait throws CheckError after
    // signal_wait_timeout_ms -- the same path a wedged EP rank takes.
    SymmetricHeap wedge_heap(1);
    const auto sig = wedge_heap.AllocateSignals("serve-wedged-rank", 1);
    wedge_heap.WaitUntilSignalGe(sig, /*rank=*/0, /*index=*/0, /*target=*/1,
                                 options_.signal_wait_timeout_ms);
    COMET_CHECK(false) << "wedged signal wait returned";  // unreachable
  }

  // The batcher drains the queue while it has room (max_active is the
  // backpressure bound that lets the queue fill under overload). Admission
  // pulls a pooled LiveRequest -- no heap traffic once the pool's internal
  // capacities are warm.
  const int64_t n_embed = options_.model.embedding;
  while (run.batcher.CanAdmit()) {
    const std::optional<RequestSpec> spec = run.queue.TryPop();
    if (!spec.has_value()) {
      break;
    }
    const int64_t slot = run.batcher.Admit(*spec);
    LiveRequest* live = run.pool.Acquire();
    live->Reset(*spec, n_embed, options_.dtype);
    if (static_cast<size_t>(slot) >= run.by_slot.size()) {
      run.by_slot.resize(static_cast<size_t>(slot) + 1);
    }
    run.by_slot[static_cast<size_t>(slot)] = live;
    run.batcher_tokens += spec->TotalTokens();
  }

  // Pack one iteration into the persistent plan.
  run.batcher.PackInto(&run.plan);
  const BatchPlan& plan = run.plan;
  if (plan.empty()) {
    return false;
  }

  run.live.resize(plan.entries.size());
  for (size_t e = 0; e < plan.entries.size(); ++e) {
    run.live[e] = run.by_slot[static_cast<size_t>(plan.entries[e].slot)];
    if (run.live[e]->first_scheduled_us < 0.0) {
      run.live[e]->first_scheduled_us = now;
    }
  }

  // One-shot corruption fault: arm the executor's link-corruption injector
  // for this iteration only, with checksums forced on so the flip is
  // DETECTED (CheckError out of RunBatchInto below) rather than served. The
  // injector seed is fixed per server, so the corrupted (buffer, rank, row)
  // is reproducible at any thread count. Consumed only when an iteration
  // actually executes -- an idle corrupt-armed replica stays armed.
  const bool corrupt = run.corrupt_next;
  run.corrupt_next = false;
  executor_.SetTransportIntegrity(options_.verify_transport || corrupt,
                                  corrupt ? 1.0 : 0.0,
                                  options_.seed ^ kCorruptStream);

  // One executor iteration: real numerics + simulated duration, through the
  // persistent workload/execution workspaces.
  int64_t padding = 0;
  BuildBatchWorkloadInto(plan, run.live, now, run, &padding);
  executor_.RunBatchInto(run.workload, cluster_, ExecMode::kFunctional,
                         &run.ex);
  const LayerExecution& ex = run.ex;
  const double end = now + options_.host_overhead_us + ex.duration_us;
  ++run.iterations;
  run.batched_tokens += plan.TotalTokens();
  run.padding_tokens += padding;
  run.batcher_tokens -= plan.TotalTokens();

  // Harvest: digest outputs, emit token events, build next decode rows.
  const int64_t per_group = run.workload.placement.tokens_per_group();
  const auto output_row = [&](int64_t global_row) {
    return ex.outputs[static_cast<size_t>(global_row / per_group)].row(
        global_row % per_group);
  };
  for (size_t e = 0; e < plan.entries.size(); ++e) {
    const BatchEntry& entry = plan.entries[e];
    LiveRequest& lr = *run.live[e];
    lr.executed_tokens += entry.num_tokens;
    for (int64_t i = 0; i < entry.num_tokens; ++i) {
      lr.digest = Fnv1aAddFloats(lr.digest, output_row(run.rows[e] + i));
    }
    const auto last_row = output_row(run.rows[e] + entry.num_tokens - 1);
    const bool completes_prefill =
        !entry.decode &&
        entry.start_pos + entry.num_tokens == lr.spec.prompt_tokens;
    if (completes_prefill) {
      // The iteration that finishes the prompt yields the first token.
      lr.first_token_us = end;
      lr.last_token_us = end;
    } else if (entry.decode) {
      lr.itl_samples.push_back(end - lr.last_token_us);
      lr.last_token_us = end;
    }
    const int64_t decode_done_after =
        entry.decode ? entry.start_pos - lr.spec.prompt_tokens + 1 : 0;
    if ((completes_prefill || entry.decode) &&
        decode_done_after < lr.spec.decode_tokens) {
      // Autoregressive feedback: the next decode input is the last output
      // row plus a unit-variance "sampled token" perturbation (keeps
      // magnitudes ~1 across arbitrarily long decodes), rounded to the
      // serve dtype like any materialized token.
      lr.decode_input.resize(static_cast<size_t>(n_embed));
      for (int64_t n = 0; n < n_embed; ++n) {
        lr.decode_input[static_cast<size_t>(n)] =
            last_row[static_cast<size_t>(n)] +
            static_cast<float>(lr.decode_rng.Normal(0.0, 1.0));
      }
      QuantizeSpan(lr.decode_input, options_.dtype);
    }
  }

  // Retire finished requests back to the pool.
  const bool tel = telemetry_.enabled();
  run.batcher.CompleteInto(plan, &run.finished);
  for (const int64_t slot : run.finished) {
    LiveRequest& lr = *run.by_slot[static_cast<size_t>(slot)];
    RequestRecord rec;
    rec.id = lr.spec.id;
    rec.prompt_tokens = lr.spec.prompt_tokens;
    rec.decode_tokens = lr.spec.decode_tokens;
    rec.arrival_us = lr.spec.arrival_us;
    rec.queue_wait_us = lr.first_scheduled_us - lr.spec.arrival_us;
    rec.ttft_us = lr.first_token_us - lr.spec.arrival_us;
    rec.e2e_us = lr.last_token_us - lr.spec.arrival_us;
    if (!lr.itl_samples.empty()) {
      double sum = 0.0;
      for (double s : lr.itl_samples) {
        sum += s;
      }
      rec.mean_itl_us = sum / static_cast<double>(lr.itl_samples.size());
    }
    rec.output_digest = lr.digest;

    run.queue_waits.push_back(rec.queue_wait_us);
    run.ttfts.push_back(rec.ttft_us);
    run.e2es.push_back(rec.e2e_us);
    run.itls.insert(run.itls.end(), lr.itl_samples.begin(),
                    lr.itl_samples.end());
    run.itl_counts.push_back(static_cast<int64_t>(lr.itl_samples.size()));
    run.completed.push_back(rec);
    if (tel) {
      // Request lifecycle: every timestamp below was stamped from the
      // simulated clock during the run, so recording at retirement loses
      // nothing and keeps the hot path to one pass.
      obs::ServerMetrics& m = telemetry_.metrics();
      obs::SpanRing& spans = telemetry_.spans();
      m.requests_completed->Increment();
      m.queue_wait_us->Observe(rec.queue_wait_us);
      m.ttft_us->Observe(rec.ttft_us);
      m.e2e_us->Observe(rec.e2e_us);
      for (const double s : lr.itl_samples) {
        m.itl_us->Observe(s);
      }
      const uint64_t id = static_cast<uint64_t>(rec.id);
      spans.Record(obs::SpanKind::kRequestQueue, lr.spec.arrival_us,
                   lr.first_scheduled_us, id,
                   static_cast<double>(rec.prompt_tokens));
      spans.Record(obs::SpanKind::kRequestPrefill, lr.first_scheduled_us,
                   lr.first_token_us, id,
                   static_cast<double>(rec.prompt_tokens));
      if (lr.last_token_us > lr.first_token_us) {
        spans.Record(obs::SpanKind::kRequestDecode, lr.first_token_us,
                     lr.last_token_us, id,
                     static_cast<double>(rec.decode_tokens));
      }
      spans.Record(obs::SpanKind::kComplete, lr.last_token_us,
                   lr.last_token_us, id, 0.0);
    }
    run.pool.Release(&lr);
    run.by_slot[static_cast<size_t>(slot)] = nullptr;
  }

  if (tel) {
    RecordIterationTelemetry(run, now, end, plan.TotalTokens(), padding);
  }

  *end_us = end;
  return true;
}

void MoeServer::RecordIterationTelemetry(RunState& run, double now, double end,
                                         int64_t packed, int64_t padding) {
  obs::ServerMetrics& m = telemetry_.metrics();
  obs::SpanRing& spans = telemetry_.spans();
  m.iterations->Increment();
  m.batched_tokens->Add(static_cast<uint64_t>(packed));
  m.padding_tokens->Add(static_cast<uint64_t>(padding));
  m.queue_depth->Set(static_cast<double>(run.queue.size()));
  m.queue_tokens->Set(static_cast<double>(run.queue.queued_tokens()));
  m.batcher_live->Set(static_cast<double>(run.batcher.live_count()));
  m.batch_fill->Set(static_cast<double>(packed) /
                    static_cast<double>(options_.token_budget));
  m.batch_tokens_hist->Observe(static_cast<double>(packed));
  m.iteration_us->Observe(end - now);

  // The executor's memo and heap totals are cumulative across runs; publish
  // this iteration's deltas.
  const uint64_t hits = executor_.profile_memo_hits();
  const uint64_t misses = executor_.profile_memo_misses();
  m.profile_hits->Add(hits - run.prev_profile_hits);
  m.profile_misses->Add(misses - run.prev_profile_misses);
  run.prev_profile_hits = hits;
  run.prev_profile_misses = misses;
  const CometExecutor::ServingHeapStats heap = executor_.serving_heap_stats();
  // Traffic bytes are integer-valued doubles (sums of byte counts), so the
  // delta casts exactly.
  m.heap_traffic_bytes->Add(
      static_cast<uint64_t>(heap.total_traffic_bytes - run.prev_heap_traffic));
  m.heap_rows_verified->Add(heap.rows_verified - run.prev_rows_verified);
  m.heap_rows_corrupted->Add(heap.rows_corrupted - run.prev_rows_corrupted);
  run.prev_heap_traffic = heap.total_traffic_bytes;
  run.prev_rows_verified = heap.rows_verified;
  run.prev_rows_corrupted = heap.rows_corrupted;

  m.promotions->Add(
      static_cast<uint64_t>(run.promotions - run.prev_promotions));
  m.retirements->Add(
      static_cast<uint64_t>(run.retirements - run.prev_retirements));
  m.replicated_rows->Add(
      static_cast<uint64_t>(run.replicated_rows - run.prev_replicated_rows));
  run.prev_promotions = run.promotions;
  run.prev_retirements = run.retirements;
  run.prev_replicated_rows = run.replicated_rows;
  m.active_replicas->Set(static_cast<double>(run.tracker.active_replicas()));

  // Iteration span plus per-phase envelopes of the executor's critical-rank
  // timeline. Timeline intervals are iteration-relative (starting at 0);
  // the serving loop's own host_overhead_us precedes them on the clock.
  const uint64_t iter_id = static_cast<uint64_t>(run.iterations);
  spans.Record(obs::SpanKind::kIteration, now, end, iter_id,
               static_cast<double>(packed));
  constexpr int kPhases = 7;  // OpCategory kGating..kHost
  constexpr obs::SpanKind kPhaseFor[kPhases] = {
      obs::SpanKind::kPhaseGating,     obs::SpanKind::kPhaseLayer0Comm,
      obs::SpanKind::kPhaseLayer0Comp, obs::SpanKind::kPhaseActivation,
      obs::SpanKind::kPhaseLayer1Comp, obs::SpanKind::kPhaseLayer1Comm,
      obs::SpanKind::kPhaseHost};
  double lo[kPhases], hi[kPhases];
  bool any[kPhases] = {};
  for (const TimeInterval& iv : run.ex.timeline.intervals()) {
    const int c = static_cast<int>(iv.category);
    if (c >= kPhases) {
      continue;  // kAttention/kOther never appear in serving batches
    }
    if (!any[c]) {
      any[c] = true;
      lo[c] = iv.start_us;
      hi[c] = iv.end_us;
    } else {
      lo[c] = std::min(lo[c], iv.start_us);
      hi[c] = std::max(hi[c], iv.end_us);
    }
  }
  const double shift = now + options_.host_overhead_us;
  for (int c = 0; c < kPhases; ++c) {
    if (any[c]) {
      spans.Record(kPhaseFor[c], shift + lo[c], shift + hi[c], iter_id, 0.0);
    }
  }
}

obs::ReplicaTelemetry MoeServer::TelemetryView() const {
  obs::ReplicaTelemetry view;
  view.name = "comet-serve";
  view.replica = 0;
  view.live = &telemetry_.spans();
  view.registry = &telemetry_.registry();
  return view;
}

std::string MoeServer::ExportChromeTrace() const {
  const obs::ReplicaTelemetry view = TelemetryView();
  return obs::ToChromeTraceJson({&view, 1});
}

std::string MoeServer::ExportPrometheusText() const {
  const obs::ReplicaTelemetry view = TelemetryView();
  return obs::ToPrometheusText({&view, 1});
}

std::string MoeServer::ExportTelemetryJsonl() const {
  const obs::ReplicaTelemetry view = TelemetryView();
  return obs::ToJsonl({&view, 1});
}

ServeReport MoeServer::BuildReport(double sim_duration_us) const {
  COMET_CHECK(run_ != nullptr) << "BuildReport before BeginRun";
  const RunState& run = *run_;

  ServeReport report;
  report.offered = run.offered;
  report.shed = run.shed;
  report.iterations = run.iterations;
  report.batched_tokens = run.batched_tokens;
  report.padding_tokens = run.padding_tokens;
  report.promotions = run.promotions;
  report.retirements = run.retirements;
  report.replicated_rows = run.replicated_rows;
  report.sim_duration_us = sim_duration_us;
  if (sim_duration_us > 0.0) {
    report.throughput_tokens_per_s =
        static_cast<double>(run.batched_tokens) / (sim_duration_us / 1e6);
  }

  std::vector<RequestRecord> completed = run.completed;
  std::sort(completed.begin(), completed.end(),
            [](const RequestRecord& a, const RequestRecord& b) {
              return a.id < b.id;
            });
  report.queue_wait_us = SummarizeLatency(run.queue_waits);
  report.ttft_us = SummarizeLatency(run.ttfts);
  report.itl_us = SummarizeLatency(run.itls);
  report.e2e_us = SummarizeLatency(run.e2es);

  uint64_t combined = Fnv1aInit();
  int64_t met = 0;
  for (const RequestRecord& rec : completed) {
    combined = Fnv1aAdd(combined, &rec.output_digest,
                        sizeof(rec.output_digest));
    const bool ttft_ok =
        options_.slo.ttft_us <= 0.0 || rec.ttft_us <= options_.slo.ttft_us;
    const bool itl_ok =
        options_.slo.itl_us <= 0.0 || rec.mean_itl_us <= options_.slo.itl_us;
    if (ttft_ok && itl_ok) {
      ++met;
    }
  }
  report.combined_digest = combined;
  report.completed = std::move(completed);

  if (options_.slo.Configured()) {
    const int64_t denom =
        static_cast<int64_t>(report.completed.size()) + report.shed;
    report.slo_violations = denom - met;
    report.slo_attainment =
        denom > 0 ? static_cast<double>(met) / static_cast<double>(denom)
                  : 1.0;
  }
  return report;
}

ServeReport MoeServer::Serve(const std::vector<RequestSpec>& arrivals) {
  RunBounds bounds;
  bounds.expected_requests = static_cast<int64_t>(arrivals.size());
  for (size_t i = 0; i < arrivals.size(); ++i) {
    if (i > 0) {
      COMET_CHECK_GE(arrivals[i].arrival_us, arrivals[i - 1].arrival_us)
          << "arrivals must be sorted by arrival_us";
    }
    bounds.expected_tokens += arrivals[i].TotalTokens();
    bounds.max_prompt_tokens =
        std::max(bounds.max_prompt_tokens, arrivals[i].prompt_tokens);
    bounds.max_decode_tokens =
        std::max(bounds.max_decode_tokens, arrivals[i].decode_tokens);
  }

  BeginRun(bounds);
  double now = 0.0;
  size_t next_arrival = 0;
  while (true) {
    // Open-loop arrivals up to the current simulated time hit the bounded
    // queue; overload sheds here, per policy.
    while (next_arrival < arrivals.size() &&
           arrivals[next_arrival].arrival_us <= now) {
      Offer(arrivals[next_arrival]);
      ++next_arrival;
    }
    double end = 0.0;
    if (StepIteration(now, &end)) {
      now = end;
      continue;
    }
    if (next_arrival < arrivals.size()) {
      // Idle: jump the clock to the next arrival.
      now = std::max(now, arrivals[next_arrival].arrival_us);
      continue;
    }
    break;  // no live work, no future arrivals: done
  }
  return BuildReport(now);
}

ServeReport MoeServer::Serve(LoadGenerator& loadgen) {
  const std::vector<RequestSpec> arrivals = loadgen.GenerateAll();
  return Serve(arrivals);
}

}  // namespace comet
