// Continuous (iteration-level) batching of MoE inference requests.
//
// Instead of running each request to completion (static batching), the
// batcher re-packs the batch EVERY iteration from whatever work is live --
// the Orca-style discipline production MoE serving uses. Each iteration it
// packs up to `token_budget` tokens:
//  1. decode class first: every request whose prefill is complete and that
//     still owes decode steps contributes exactly one token, in admission
//     order. In-flight requests pre-empt new prompts because a stalled
//     decode is user-visible inter-token latency, while a waiting prompt
//     only grows TTFT it has already paid in queue.
//  2. prefill class second: remaining budget goes to incomplete prompts in
//     admission order; a prompt larger than the leftover budget takes a
//     partial CHUNK (chunked prefill), and packing never skips ahead past a
//     partially-served prompt -- FIFO order within the class is strict, so
//     a small late prompt cannot starve a big early one.
//
// The batcher is pure bookkeeping: no tensors, no clock. The server maps
// plans to MoE batches; serve_test drives randomized request streams through
// Pack/Complete and asserts the packing invariants (budget respected, every
// token scheduled exactly once, FIFO within class) hold for all of them.
#pragma once

#include <cstdint>
#include <vector>

#include "serve/request.h"

namespace comet {

struct BatcherOptions {
  // Max tokens per iteration (> 0). The executor's per-iteration capacity:
  // prefill chunks + decode steps together never exceed it.
  int64_t token_budget = 64;
  // Max requests live in the batcher at once (admitted, not finished);
  // 0 = unbounded. With a cap, the server stops draining the admission
  // queue when full -- that is the backpressure that makes the bounded
  // queue fill and shed under overload.
  int64_t max_active = 0;
};

// One request's share of an iteration. `start_pos` counts positions over the
// request's whole token stream (prompt then decode), so consecutive entries
// for one request tile [0, prompt_tokens + decode_tokens) exactly.
struct BatchEntry {
  int64_t slot = 0;        // batcher slot (== admission sequence number)
  int64_t request_id = 0;  // RequestSpec::id, for reporting
  int64_t start_pos = 0;
  int64_t num_tokens = 0;
  bool decode = false;     // true: one decode step; false: a prefill chunk
};

struct BatchPlan {
  int64_t iteration = 0;
  std::vector<BatchEntry> entries;

  int64_t TotalTokens() const {
    int64_t n = 0;
    for (const BatchEntry& e : entries) {
      n += e.num_tokens;
    }
    return n;
  }
  bool empty() const { return entries.empty(); }
};

class ContinuousBatcher {
 public:
  explicit ContinuousBatcher(BatcherOptions options);

  const BatcherOptions& options() const { return options_; }

  // Pre-sizes the slot table (and the live list) for up to
  // `expected_requests` admissions, so Admit within that bound never
  // reallocates. Slot numbering is untouched -- this is pure capacity.
  void Reserve(int64_t expected_requests);

  // True when another request may be admitted under max_active.
  bool CanAdmit() const;
  // Admits a request; returns its slot. Slots are assigned in admission
  // order (0, 1, 2, ...), which is also the FIFO key within each class.
  int64_t Admit(const RequestSpec& spec);

  // Packs the next iteration over the live requests. Empty plan when no
  // request has work left (all finished, or none admitted).
  BatchPlan Pack();
  // In-place Pack: clears and refills `plan->entries` (capacity retained),
  // so a plan reused across iterations allocates only until its entry
  // capacity reaches the high-water mark (<= token_budget entries).
  void PackInto(BatchPlan* plan);

  // Records that `plan` (the most recent Pack result) was executed:
  // advances per-request progress. Returns the slots that FINISHED with
  // this iteration, in slot order.
  std::vector<int64_t> Complete(const BatchPlan& plan);
  // In-place Complete: clears and refills `*finished` (capacity retained).
  void CompleteInto(const BatchPlan& plan, std::vector<int64_t>* finished);

  // Withdraws a live (not finished) request: it stops being packed and no
  // longer counts against max_active. Hedged-dispatch loser cancellation;
  // CHECK-fails on an already-finished slot (cancel-after-complete is a
  // caller bug -- the winner was already decided).
  void Cancel(int64_t slot);

  // Live = admitted and not finished.
  int64_t live_count() const { return static_cast<int64_t>(live_.size()); }
  bool HasLiveWork() const { return !live_.empty(); }

  const RequestSpec& spec(int64_t slot) const;
  int64_t prefill_done(int64_t slot) const;
  int64_t decode_done(int64_t slot) const;
  bool finished(int64_t slot) const;

 private:
  struct Slot {
    RequestSpec spec;
    int64_t prefill_done = 0;
    int64_t decode_done = 0;
    bool finished = false;
  };

  const Slot& At(int64_t slot) const;
  static bool SlotFinished(const Slot& s);

  BatcherOptions options_;
  std::vector<Slot> slots_;
  // Live slots in admission order (invariant: strictly increasing).
  std::vector<int64_t> live_;
  int64_t iteration_ = 0;
};

}  // namespace comet
