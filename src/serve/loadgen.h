// Seeded open-loop request generation on the simulated clock.
//
// Open-loop means arrivals are INDEPENDENT of service: the generator lays
// down request arrival times from the seed alone, and the server either
// keeps up or queues/sheds -- the load never politely waits for capacity
// (the closed-loop fallacy latency benchmarks warn about). Two arrival
// processes:
//  * kPoisson -- exponential inter-arrival gaps at `offered_rps`;
//  * kBursty  -- a compound (batch) Poisson process: burst epochs arrive at
//    offered_rps / mean_burst, each carrying a geometrically-distributed
//    number of simultaneous requests with mean `mean_burst`. The long-run
//    offered rate is identical to kPoisson's; only the variance moves, which
//    is exactly the knob tail-latency studies need.
//
// Prompt/decode lengths draw from configurable distributions (fixed,
// uniform, or the bimodal short-interactive / long-context mix production
// traces show). Everything derives from LoadGenOptions::seed, so a request
// stream is exactly reproducible.
#pragma once

#include <cstdint>
#include <vector>

#include "serve/request.h"
#include "util/rng.h"

namespace comet {

enum class ArrivalProcess {
  kPoisson,
  kBursty,
};

const char* ArrivalProcessName(ArrivalProcess process);

// Distribution over token lengths (prompt or decode).
struct LengthDist {
  enum class Kind {
    kFixed,    // always `fixed`
    kUniform,  // uniform integer in [lo, hi]
    kBimodal,  // short_len with prob (1 - long_fraction), else long_len
  };
  Kind kind = Kind::kFixed;
  int64_t fixed = 8;
  int64_t lo = 1;
  int64_t hi = 16;
  int64_t short_len = 4;
  int64_t long_len = 32;
  double long_fraction = 0.1;

  static LengthDist Fixed(int64_t n);
  static LengthDist Uniform(int64_t lo, int64_t hi);
  static LengthDist Bimodal(int64_t short_len, int64_t long_len,
                            double long_fraction);

  // Smallest / largest value Sample can return.
  int64_t Min() const;
  int64_t Max() const;
  int64_t Sample(Rng& rng) const;

  // Loud up-front validation (CheckError): kUniform requires lo <= hi,
  // kBimodal requires long_fraction in [0, 1]. LoadGenerator calls this at
  // construction, so a malformed distribution fails when it is configured
  // -- not at whichever Sample first hits the broken branch (a kBimodal
  // stream with long_fraction 1e9 otherwise emits plausible requests until
  // the first draw lands in the nonsense region).
  void Validate() const;
};

struct LoadGenOptions {
  uint64_t seed = 1;
  // Mean offered load, requests per simulated second.
  double offered_rps = 100.0;
  ArrivalProcess arrival = ArrivalProcess::kPoisson;
  // kBursty: mean requests per burst epoch (>= 1; 1 degenerates to Poisson).
  double mean_burst = 4.0;
  int64_t num_requests = 100;
  // Sessions for sticky placement: > 0 draws each request's session key
  // uniformly from [0, num_sessions); 0 (default) gives every request its
  // own session (session == id) WITHOUT consuming a draw, so existing
  // seeded streams are bit-identical to what they were before sessions
  // existed.
  int64_t num_sessions = 0;
  LengthDist prompt = LengthDist::Uniform(4, 16);
  LengthDist decode = LengthDist::Uniform(1, 8);
};

// Streams `num_requests` RequestSpecs with non-decreasing arrival_us.
class LoadGenerator {
 public:
  explicit LoadGenerator(LoadGenOptions options);

  bool Done() const { return emitted_ >= options_.num_requests; }
  // Next request; CHECK-fails when Done().
  RequestSpec Next();

  // Drains the whole stream (convenience for benches/tests).
  std::vector<RequestSpec> GenerateAll();

  const LoadGenOptions& options() const { return options_; }

 private:
  LoadGenOptions options_;
  Rng rng_;
  int64_t emitted_ = 0;
  double clock_us_ = 0.0;
  // kBursty: requests still to emit at the current epoch's timestamp.
  int64_t burst_remaining_ = 0;
};

}  // namespace comet
