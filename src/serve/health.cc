#include "serve/health.h"

#include <algorithm>

#include "util/check.h"

namespace comet {

ReplicaHealth::ReplicaHealth(int num_replicas, HealthOptions options)
    : options_(options) {
  COMET_CHECK_GT(num_replicas, 0);
  COMET_CHECK_GT(options_.ewma_alpha, 0.0) << "HealthOptions::ewma_alpha";
  COMET_CHECK_LE(options_.ewma_alpha, 1.0) << "HealthOptions::ewma_alpha";
  COMET_CHECK_GT(options_.open_threshold, 0.0)
      << "HealthOptions::open_threshold";
  COMET_CHECK_LE(options_.open_threshold, 1.0)
      << "HealthOptions::open_threshold";
  COMET_CHECK_GT(options_.probe_backoff_us, 0.0)
      << "HealthOptions::probe_backoff_us";
  COMET_CHECK_GE(options_.backoff_multiplier, 1.0)
      << "HealthOptions::backoff_multiplier";
  COMET_CHECK_GE(options_.max_backoff_us, options_.probe_backoff_us)
      << "HealthOptions::max_backoff_us must cover probe_backoff_us";
  COMET_CHECK_GT(options_.half_open_probes, 0)
      << "HealthOptions::half_open_probes";
  reps_.resize(static_cast<size_t>(num_replicas));
}

size_t ReplicaHealth::Check(int r) const {
  COMET_CHECK_GE(r, 0) << "replica health";
  COMET_CHECK_LT(static_cast<size_t>(r), reps_.size()) << "replica health";
  return static_cast<size_t>(r);
}

void ReplicaHealth::Open(Rep& rep, double now_us) {
  double backoff = options_.probe_backoff_us;
  for (int i = 0; i < rep.streak && backoff < options_.max_backoff_us; ++i) {
    backoff *= options_.backoff_multiplier;
  }
  backoff = std::min(backoff, options_.max_backoff_us);
  rep.open = true;
  rep.open_until = now_us + backoff;
  rep.probes_in_flight = 0;
  ++rep.streak;
  ++total_opens_;
}

void ReplicaHealth::ObserveSuccess(int r, double now_us) {
  Rep& rep = reps_[Check(r)];
  rep.ewma = (1.0 - options_.ewma_alpha) * rep.ewma;
  if (rep.open && HalfOpen(rep, now_us)) {
    // Probe success: close and forgive the streak.
    rep.open = false;
    rep.open_until = 0.0;
    rep.streak = 0;
    rep.probes_in_flight = 0;
  }
}

void ReplicaHealth::ObserveFailure(int r, double now_us) {
  Rep& rep = reps_[Check(r)];
  rep.ewma = (1.0 - options_.ewma_alpha) * rep.ewma + options_.ewma_alpha;
  const bool half_open = rep.open && HalfOpen(rep, now_us);
  if (half_open || (!rep.open && rep.ewma >= options_.open_threshold)) {
    Open(rep, now_us);
  }
}

void ReplicaHealth::ForceOpen(int r, double now_us) {
  Rep& rep = reps_[Check(r)];
  rep.ewma = (1.0 - options_.ewma_alpha) * rep.ewma + options_.ewma_alpha;
  Open(rep, now_us);
}

bool ReplicaHealth::AllowDispatch(int r, double now_us) const {
  const Rep& rep = reps_[Check(r)];
  if (!rep.open) return true;
  if (!HalfOpen(rep, now_us)) return false;
  return rep.probes_in_flight < options_.half_open_probes;
}

void ReplicaHealth::OnProbeDispatched(int r, double now_us) {
  Rep& rep = reps_[Check(r)];
  if (rep.open && HalfOpen(rep, now_us)) {
    ++rep.probes_in_flight;
    ++total_probes_;
  }
}

BreakerState ReplicaHealth::state(int r, double now_us) const {
  const Rep& rep = reps_[Check(r)];
  if (!rep.open) return BreakerState::kClosed;
  return HalfOpen(rep, now_us) ? BreakerState::kHalfOpen : BreakerState::kOpen;
}

}  // namespace comet
