#include "serve/admission_queue.h"

#include "util/check.h"

namespace comet {

const char* AdmissionPolicyName(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kShedNewest:
      return "shed-newest";
    case AdmissionPolicy::kShedOldest:
      return "shed-oldest";
  }
  return "unknown";
}

AdmissionQueue::AdmissionQueue(int64_t capacity, AdmissionPolicy policy)
    : capacity_(capacity), policy_(policy) {
  COMET_CHECK_GT(capacity_, 0);
}

AdmissionQueue::Admit AdmissionQueue::TryPush(const RequestSpec& spec) {
  Admit result;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) {
      ++total_shed_;
      return result;
    }
    if (static_cast<int64_t>(items_.size()) < capacity_) {
      items_.push_back(spec);
      queued_tokens_ += spec.TotalTokens();
      ++total_admitted_;
      result.admitted = true;
    } else if (policy_ == AdmissionPolicy::kShedOldest) {
      result.evicted = items_.front();
      items_.pop_front();
      items_.push_back(spec);
      queued_tokens_ += spec.TotalTokens() - result.evicted->TotalTokens();
      ++total_admitted_;
      ++total_shed_;
      result.admitted = true;
    } else {
      ++total_shed_;
    }
  }
  if (result.admitted) {
    ready_.notify_one();
  }
  return result;
}

std::optional<RequestSpec> AdmissionQueue::TryPop() {
  std::lock_guard<std::mutex> lock(mu_);
  if (items_.empty()) {
    return std::nullopt;
  }
  RequestSpec spec = items_.front();
  items_.pop_front();
  queued_tokens_ -= spec.TotalTokens();
  return spec;
}

std::optional<RequestSpec> AdmissionQueue::Pop() {
  std::unique_lock<std::mutex> lock(mu_);
  ready_.wait(lock, [&] { return !items_.empty() || closed_; });
  if (items_.empty()) {
    return std::nullopt;
  }
  RequestSpec spec = items_.front();
  items_.pop_front();
  queued_tokens_ -= spec.TotalTokens();
  return spec;
}

std::optional<RequestSpec> AdmissionQueue::Remove(int64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = items_.begin(); it != items_.end(); ++it) {
    if (it->id == id) {
      RequestSpec spec = *it;
      items_.erase(it);
      queued_tokens_ -= spec.TotalTokens();
      return spec;
    }
  }
  return std::nullopt;
}

void AdmissionQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  ready_.notify_all();
}

int64_t AdmissionQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(items_.size());
}

int64_t AdmissionQueue::queued_tokens() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_tokens_;
}

int64_t AdmissionQueue::total_admitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_admitted_;
}

int64_t AdmissionQueue::total_shed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_shed_;
}

}  // namespace comet
