#include "serve/admission_queue.h"

#include "util/check.h"

namespace comet {

const char* AdmissionPolicyName(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kShedNewest:
      return "shed-newest";
    case AdmissionPolicy::kShedOldest:
      return "shed-oldest";
  }
  return "unknown";
}

AdmissionQueue::AdmissionQueue(int64_t capacity, AdmissionPolicy policy)
    : capacity_(capacity), policy_(policy) {
  COMET_CHECK_GT(capacity_, 0);
  ring_.resize(static_cast<size_t>(capacity_));
}

void AdmissionQueue::PushBack(const RequestSpec& spec) {
  At(size_) = spec;
  ++size_;
}

RequestSpec AdmissionQueue::PopFront() {
  RequestSpec spec = At(0);
  head_ = (head_ + 1) % capacity_;
  --size_;
  return spec;
}

AdmissionQueue::Admit AdmissionQueue::TryPush(const RequestSpec& spec) {
  Admit result;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) {
      ++total_shed_;
      return result;
    }
    if (size_ < capacity_) {
      PushBack(spec);
      queued_tokens_ += spec.TotalTokens();
      ++total_admitted_;
      result.admitted = true;
    } else if (policy_ == AdmissionPolicy::kShedOldest) {
      result.evicted = PopFront();
      PushBack(spec);
      queued_tokens_ += spec.TotalTokens() - result.evicted->TotalTokens();
      ++total_admitted_;
      ++total_shed_;
      result.admitted = true;
    } else {
      ++total_shed_;
    }
  }
  if (result.admitted) {
    ready_.notify_one();
  }
  return result;
}

std::optional<RequestSpec> AdmissionQueue::TryPop() {
  std::lock_guard<std::mutex> lock(mu_);
  if (size_ == 0) {
    return std::nullopt;
  }
  RequestSpec spec = PopFront();
  queued_tokens_ -= spec.TotalTokens();
  return spec;
}

std::optional<RequestSpec> AdmissionQueue::Pop() {
  std::unique_lock<std::mutex> lock(mu_);
  ready_.wait(lock, [&] { return size_ > 0 || closed_; });
  if (size_ == 0) {
    return std::nullopt;
  }
  RequestSpec spec = PopFront();
  queued_tokens_ -= spec.TotalTokens();
  return spec;
}

std::optional<RequestSpec> AdmissionQueue::Remove(int64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (int64_t pos = 0; pos < size_; ++pos) {
    if (At(pos).id == id) {
      RequestSpec spec = At(pos);
      // Close the gap in place, preserving FIFO order of the rest.
      for (int64_t p = pos; p + 1 < size_; ++p) {
        At(p) = At(p + 1);
      }
      --size_;
      queued_tokens_ -= spec.TotalTokens();
      return spec;
    }
  }
  return std::nullopt;
}

void AdmissionQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  ready_.notify_all();
}

int64_t AdmissionQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return size_;
}

int64_t AdmissionQueue::queued_tokens() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_tokens_;
}

int64_t AdmissionQueue::total_admitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_admitted_;
}

int64_t AdmissionQueue::total_shed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_shed_;
}

}  // namespace comet
