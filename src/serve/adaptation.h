// Online adaptation under routing skew: the hot-expert replication policy.
//
// Routing skew is the known MoE serving killer (paper Figure 14: production
// per-expert load std ~ 0.032 with far higher tail spikes); FasterMoE's
// shadow-expert result shows replicating the hot expert onto an underloaded
// rank recovers most of the imbalance loss. This header holds the POLICY
// half of that loop for the serving plane:
//
//   observe -> EWMA -> promote -> split -> retire
//
// MoeServer feeds every iteration's per-expert pair counts into a
// HotExpertTracker. The tracker keeps a per-expert EWMA of the load
// FRACTION; when an expert's EWMA crosses hot_factor/E it is promoted into
// a free replica slot on the least-loaded OTHER EP group, and RoutePlan
// splits its traffic 50/50 between home and replica slices. When the EWMA
// falls back under cool_factor/E the replica is retired. cool_factor <
// hot_factor plus a per-slot cooldown is the hysteresis that prevents
// flapping.
//
// Determinism: the tracker is a pure function of its config and the
// observed load sequence -- no RNG, no wall-clock. Since serving loads
// derive entirely from seeded streams, every promote/retire decision (and
// hence the whole adapted run) is bit-reproducible at any thread count.
// The mechanism half (replica weight slabs on the symmetric heap, replica
// dispatch) lives in CometExecutor; the split itself in RoutePlan.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "moe/route_plan.h"

namespace comet {

struct AdaptationOptions {
  // Master switch. Off => the serving plane is byte-identical to a build
  // without the adaptation plane (no tracker observations, no replica
  // slices, no profile invalidations).
  bool enabled = false;
  // EWMA weight of the newest observation, in (0, 1]. 1 = no smoothing.
  double ewma_decay = 0.25;
  // Promote expert e when ewma[e] >= hot_factor / E. Must be > cool_factor.
  double hot_factor = 1.75;
  // Retire a replica when its expert's ewma <= cool_factor / E.
  double cool_factor = 1.25;
  // Replica slots preallocated by the executor (weight slabs, plan slices).
  // >= 0; 0 with enabled == true observes loads but never replicates.
  int max_replicated_experts = 1;
  // Iterations a slot stays quiescent after any promote/retire through it
  // (the anti-flap half of the hysteresis). >= 0.
  int64_t cooldown_iterations = 8;

  // Loud validation at server construction (PR 7 convention: every
  // robustness knob validates up front, not at first use).
  void Validate() const;
};

// Deterministic hot-expert replication policy. Not thread-safe; one serving
// loop per tracker.
class HotExpertTracker {
 public:
  struct Event {
    int slot = -1;
    int64_t expert = -1;
    int ep_group = -1;  // replica group (promote) / former group (retire)
    bool promote = false;
  };

  // `ep` must divide `num_experts` (block expert placement).
  HotExpertTracker(const AdaptationOptions& options, int64_t num_experts,
                   int ep);

  // Feeds one iteration's per-expert (token, expert) pair counts (as
  // produced by RoutingTable::ExpertLoadsInto). Updates the EWMA, then
  // applies at most ONE retirement and ONE promotion:
  //  * retire: the lowest-index active slot whose expert's EWMA fell to
  //    cool_factor/E and whose cooldown elapsed;
  //  * promote: the hottest unreplicated expert with EWMA >= hot_factor/E
  //    (ties to the lowest expert index), into the lowest-index free
  //    quiescent slot, placed on the EP group with the least effective
  //    EWMA load among groups other than the expert's home (a replicated
  //    expert counts half on each side; ties to the lowest group index).
  // EP == 1 never promotes (there is no other group). Returns the number of
  // events emitted (0..2), readable via events() until the next Observe.
  // Allocation-free after construction.
  int Observe(std::span<const int64_t> loads);

  // Current slot assignments (size max_replicated_experts; inactive slots
  // have expert < 0). Stable storage -- feed directly to RoutePlan::Rebuild.
  std::span<const ReplicaAssignment> replicas() const { return replicas_; }
  std::span<const Event> events() const { return events_; }
  double ewma(int64_t expert) const;
  int active_replicas() const;
  int64_t promotions() const { return promotions_; }
  int64_t retirements() const { return retirements_; }

 private:
  AdaptationOptions options_;
  int64_t num_experts_;
  int ep_;
  int64_t experts_per_group_;
  std::vector<double> ewma_;
  std::vector<ReplicaAssignment> replicas_;
  std::vector<int64_t> cooldown_;
  std::vector<int32_t> slot_of_expert_;  // -1 when not replicated
  std::vector<double> group_load_;       // placement argmin scratch
  std::vector<Event> events_;
  int64_t promotions_ = 0;
  int64_t retirements_ = 0;
};

}  // namespace comet
