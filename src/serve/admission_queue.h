// Bounded MPMC admission queue with an explicit backpressure/shed policy.
//
// The queue sits between the load generator (producer) and the continuous
// batcher (consumer). It is deliberately BOUNDED: an open-loop arrival
// process does not slow down when the server falls behind, so without a
// bound the queue -- and every queued request's latency -- grows without
// limit. Overload has to go somewhere; the policy says where:
//  * kShedNewest -- a full queue rejects the arriving request (classic
//    admission control: protect the latency of work already admitted);
//  * kShedOldest -- a full queue evicts its head to admit the newcomer
//    (the oldest request has already blown its deadline; spend capacity on
//    one that can still meet it).
// Shed requests are counted and reported, never silently dropped.
//
// Thread safety: all operations are safe from any number of producer and
// consumer threads (mutex + condvar; serve_test hammers it cross-thread
// under TSan). The simulated-clock serving loop drives it single-threaded
// -- determinism there comes from the loop, not from the queue.
//
// Storage is a fixed ring sized at construction (the bound exists anyway --
// that is the whole point of admission control), so steady-state push/pop
// perform zero heap allocations.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "serve/request.h"

namespace comet {

enum class AdmissionPolicy {
  kShedNewest,
  kShedOldest,
};

const char* AdmissionPolicyName(AdmissionPolicy policy);

class AdmissionQueue {
 public:
  // Outcome of one TryPush.
  struct Admit {
    bool admitted = false;
    // Set under kShedOldest when admitting evicted the head.
    std::optional<RequestSpec> evicted;
  };

  AdmissionQueue(int64_t capacity, AdmissionPolicy policy);

  // Non-blocking admission; never waits (the producer is an open-loop
  // arrival process -- it cannot be paused). Exactly one request is shed
  // when the queue is full: the newcomer (kShedNewest, admitted == false)
  // or the head (kShedOldest, admitted == true + evicted set).
  Admit TryPush(const RequestSpec& spec);

  // Non-blocking pop in FIFO order.
  std::optional<RequestSpec> TryPop();

  // Blocking pop: waits until a request is available or the queue is closed
  // AND drained (then returns nullopt).
  std::optional<RequestSpec> Pop();

  // Removes (and returns) the queued request with RequestSpec::id == id,
  // preserving the order of the rest; nullopt when not queued. The cluster's
  // hedged dispatch uses this for loser cancellation: when one copy of a
  // hedged request completes, the still-queued copy is withdrawn. Not
  // counted as shed (the request completed elsewhere).
  std::optional<RequestSpec> Remove(int64_t id);

  // Wakes all blocked consumers; subsequent TryPush calls shed everything.
  void Close();

  int64_t capacity() const { return capacity_; }
  AdmissionPolicy policy() const { return policy_; }
  int64_t size() const;
  // Sum of RequestSpec::TotalTokens over the currently queued requests --
  // the dispatcher hook the cluster plane's least-loaded / power-of-two
  // placement policies read as a replica's backlog.
  int64_t queued_tokens() const;
  // Lifetime counters (monotonic).
  int64_t total_admitted() const;
  int64_t total_shed() const;

 private:
  // Ring accessors; callers hold mu_.
  RequestSpec& At(int64_t pos) {
    return ring_[static_cast<size_t>((head_ + pos) % capacity_)];
  }
  void PushBack(const RequestSpec& spec);
  RequestSpec PopFront();

  const int64_t capacity_;
  const AdmissionPolicy policy_;

  mutable std::mutex mu_;
  std::condition_variable ready_;
  // Fixed-capacity ring (RequestSpec is POD): the queue is allocated once at
  // construction and steady-state push/pop touch no heap, which keeps the
  // serving loop's admission path inside the zero-allocation envelope.
  std::vector<RequestSpec> ring_;
  int64_t head_ = 0;  // index of the oldest element
  int64_t size_ = 0;
  bool closed_ = false;
  int64_t queued_tokens_ = 0;
  int64_t total_admitted_ = 0;
  int64_t total_shed_ = 0;
};

}  // namespace comet
