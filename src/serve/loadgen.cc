#include "serve/loadgen.h"

#include <cmath>

#include "util/check.h"

namespace comet {

const char* ArrivalProcessName(ArrivalProcess process) {
  switch (process) {
    case ArrivalProcess::kPoisson:
      return "poisson";
    case ArrivalProcess::kBursty:
      return "bursty";
  }
  return "unknown";
}

LengthDist LengthDist::Fixed(int64_t n) {
  LengthDist d;
  d.kind = Kind::kFixed;
  d.fixed = n;
  return d;
}

LengthDist LengthDist::Uniform(int64_t lo, int64_t hi) {
  LengthDist d;
  d.kind = Kind::kUniform;
  d.lo = lo;
  d.hi = hi;
  return d;
}

LengthDist LengthDist::Bimodal(int64_t short_len, int64_t long_len,
                               double long_fraction) {
  LengthDist d;
  d.kind = Kind::kBimodal;
  d.short_len = short_len;
  d.long_len = long_len;
  d.long_fraction = long_fraction;
  return d;
}

int64_t LengthDist::Min() const {
  switch (kind) {
    case Kind::kFixed:
      return fixed;
    case Kind::kUniform:
      return lo;
    case Kind::kBimodal:
      return std::min(short_len, long_len);
  }
  return 0;
}

int64_t LengthDist::Max() const {
  switch (kind) {
    case Kind::kFixed:
      return fixed;
    case Kind::kUniform:
      return hi;
    case Kind::kBimodal:
      return std::max(short_len, long_len);
  }
  return 0;
}

void LengthDist::Validate() const {
  switch (kind) {
    case Kind::kFixed:
      break;
    case Kind::kUniform:
      COMET_CHECK_LE(lo, hi) << "uniform length range is empty";
      break;
    case Kind::kBimodal:
      COMET_CHECK_GE(long_fraction, 0.0)
          << "bimodal long_fraction must be a probability";
      COMET_CHECK_LE(long_fraction, 1.0)
          << "bimodal long_fraction must be a probability";
      break;
  }
}

int64_t LengthDist::Sample(Rng& rng) const {
  switch (kind) {
    case Kind::kFixed:
      return fixed;
    case Kind::kUniform:
      COMET_CHECK_LE(lo, hi);
      return rng.UniformInt(lo, hi);
    case Kind::kBimodal:
      COMET_CHECK_GE(long_fraction, 0.0);
      COMET_CHECK_LE(long_fraction, 1.0);
      return rng.NextDouble() < long_fraction ? long_len : short_len;
  }
  return 1;
}

namespace {

// Exponential gap with the given mean, us. Uses 1 - u so the argument to
// log is never 0 (NextDouble is in [0, 1)).
double ExpGapUs(Rng& rng, double mean_us) {
  return -mean_us * std::log(1.0 - rng.NextDouble());
}

}  // namespace

LoadGenerator::LoadGenerator(LoadGenOptions options)
    : options_(options), rng_(options.seed) {
  COMET_CHECK_GT(options_.offered_rps, 0.0);
  COMET_CHECK_GE(options_.num_requests, 0);
  COMET_CHECK_GE(options_.mean_burst, 1.0);
  COMET_CHECK_GE(options_.num_sessions, 0);
  options_.prompt.Validate();
  options_.decode.Validate();
  COMET_CHECK_GT(options_.prompt.Min(), 0);
  COMET_CHECK_GE(options_.decode.Min(), 0);
}

RequestSpec LoadGenerator::Next() {
  COMET_CHECK(!Done()) << "load generator exhausted";
  const double mean_gap_us = 1e6 / options_.offered_rps;

  if (options_.arrival == ArrivalProcess::kPoisson) {
    clock_us_ += ExpGapUs(rng_, mean_gap_us);
  } else {
    if (burst_remaining_ == 0) {
      // New burst epoch: gaps are stretched by mean_burst so the long-run
      // rate stays offered_rps; the burst size is geometric with mean
      // mean_burst (p = 1/mean_burst, support >= 1).
      clock_us_ += ExpGapUs(rng_, mean_gap_us * options_.mean_burst);
      const double p = 1.0 / options_.mean_burst;
      burst_remaining_ = 1;
      while (rng_.NextDouble() >= p) {
        ++burst_remaining_;
      }
    }
    --burst_remaining_;  // all requests of an epoch share one timestamp
  }

  RequestSpec spec;
  spec.id = emitted_;
  spec.seed = rng_.NextU64();
  spec.prompt_tokens = options_.prompt.Sample(rng_);
  spec.decode_tokens = options_.decode.Sample(rng_);
  spec.session =
      options_.num_sessions > 0
          ? static_cast<uint64_t>(
                rng_.UniformInt(0, options_.num_sessions - 1))
          : static_cast<uint64_t>(emitted_);
  spec.arrival_us = clock_us_;
  ++emitted_;
  return spec;
}

std::vector<RequestSpec> LoadGenerator::GenerateAll() {
  std::vector<RequestSpec> out;
  out.reserve(static_cast<size_t>(options_.num_requests - emitted_));
  while (!Done()) {
    out.push_back(Next());
  }
  return out;
}

}  // namespace comet
