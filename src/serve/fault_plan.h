// Deterministic fault plane for the cluster: a schedule of replica faults
// (and recoveries) on the SIMULATED clock.
//
// Faults are data, not chance: a FaultPlan is part of the cluster config,
// so the same (seed, config, plan) reproduces the same failure interleaving
// bit-for-bit -- which is what lets the fault tests assert exact SLO
// accounting instead of "roughly N requests were affected". Kinds:
//  * kFail    -- the replica dies. If it is mid-iteration, the iteration
//    completes first (simulated work already in flight finishes; death is
//    observed at the next scheduling point, as a real health checker
//    would). Its in-flight requests are drained and re-dispatched, retried
//    with backoff, or counted as SLO violations, per InFlightPolicy.
//  * kDrain   -- graceful decommission: the replica stops accepting new
//    dispatches but keeps iterating until its queue and batcher are empty.
//  * kWedge   -- the replica's next iteration parks in the symmetric heap's
//    WaitUntilSignalGe fail-fast path (a signal no producer raises), so it
//    throws CheckError after ServeOptions::signal_wait_timeout_ms. The
//    cluster catches that and accounts the replica as failed: a wedged rank
//    surfaces as a counted replica failure, never a hang.
//  * kCorrupt -- the replica's next iteration runs with the symmetric
//    heap's link-corruption injector armed at rate 1 (and checksums forced
//    on): the first consumer of a corrupted row throws CheckError naming
//    buffer/rank/row, the cluster counts the replica as failed. Corruption
//    is always DETECTED, never silently served.
//  * kRecover -- a previously failed replica restarts: fresh executor,
//    symmetric heap, EP group and a COLD profile cache, then a configurable
//    warm-up (ClusterOptions::recovery_warmup_us) before it re-enters the
//    accepting set. Moot if the replica is alive at fire time.
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace comet {

enum class FaultKind {
  kFail,
  kDrain,
  kWedge,
  kCorrupt,
  kRecover,
};

inline const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kFail:
      return "fail";
    case FaultKind::kDrain:
      return "drain";
    case FaultKind::kWedge:
      return "wedge";
    case FaultKind::kCorrupt:
      return "corrupt";
    case FaultKind::kRecover:
      return "recover";
  }
  return "unknown";
}

struct FaultEvent {
  // Simulated time at which the fault fires (applied at the first
  // scheduling point with now >= time_us).
  double time_us = 0.0;
  int replica = 0;
  FaultKind kind = FaultKind::kFail;
};

// What happens to a failed replica's in-flight (admitted, not completed)
// requests.
enum class InFlightPolicy {
  // Recovered specs go back through the dispatcher (ahead of new arrivals,
  // original order preserved) and are recomputed from scratch elsewhere.
  // Because request outputs depend only on (seed, weights) -- never on
  // batch composition -- a re-dispatched request's digest matches the
  // no-fault run exactly; only its latency pays for the failure.
  kRedispatch,
  // Lost: counted as failed_in_flight and charged to the SLO denominator
  // (like shed -- a latency failure the operator chose to take).
  kCountAsViolation,
  // Retried with a per-request budget and exponential backoff + seeded
  // jitter on the SIMULATED clock (ClusterOptions::retry_*): the k-th retry
  // waits retry_backoff_us * 2^k, scaled by a jitter drawn from the
  // cluster's dedicated retry stream. A request whose budget runs out is
  // counted as retries_exhausted (an SLO violation, like failed_in_flight).
  // Same digest guarantee as kRedispatch: retries change latency, not bits.
  kRetryBackoff,
};

inline const char* InFlightPolicyName(InFlightPolicy policy) {
  switch (policy) {
    case InFlightPolicy::kRedispatch:
      return "redispatch";
    case InFlightPolicy::kCountAsViolation:
      return "count-as-violation";
    case InFlightPolicy::kRetryBackoff:
      return "retry-backoff";
  }
  return "unknown";
}

// The full schedule. Events must be sorted by time_us (ties fire in vector
// order); MoeCluster validates at construction via ValidateFaultPlan.
struct FaultPlan {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }
};

// Validates a plan against a fleet size: every event in range and at a
// non-negative time, events sorted by time_us, and every kRecover preceded
// by an unrecovered fail-class event (kFail / kWedge / kCorrupt) for the
// same replica -- recovering a replica that never went down is a config
// bug, surfaced loudly instead of silently skipped.
inline void ValidateFaultPlan(const FaultPlan& plan, int num_replicas) {
  std::vector<int> downs(static_cast<size_t>(num_replicas), 0);
  for (size_t i = 0; i < plan.events.size(); ++i) {
    const FaultEvent& ev = plan.events[i];
    COMET_CHECK_GE(ev.replica, 0) << "fault event " << i;
    COMET_CHECK_LT(ev.replica, num_replicas)
        << "fault event " << i << " targets a replica outside the fleet";
    COMET_CHECK_GE(ev.time_us, 0.0) << "fault event " << i;
    if (i > 0) {
      COMET_CHECK_GE(ev.time_us, plan.events[i - 1].time_us)
          << "fault events must be sorted by time_us";
    }
    switch (ev.kind) {
      case FaultKind::kFail:
      case FaultKind::kWedge:
      case FaultKind::kCorrupt:
        ++downs[static_cast<size_t>(ev.replica)];
        break;
      case FaultKind::kRecover:
        COMET_CHECK_GT(downs[static_cast<size_t>(ev.replica)], 0)
            << "fault event " << i << ": kRecover for replica " << ev.replica
            << " without a prior fail/wedge/corrupt";
        --downs[static_cast<size_t>(ev.replica)];
        break;
      case FaultKind::kDrain:
        break;
    }
  }
}

}  // namespace comet
