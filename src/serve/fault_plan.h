// Deterministic fault plane for the cluster: a schedule of replica faults
// on the SIMULATED clock.
//
// Faults are data, not chance: a FaultPlan is part of the cluster config,
// so the same (seed, config, plan) reproduces the same failure interleaving
// bit-for-bit -- which is what lets the fault tests assert exact SLO
// accounting instead of "roughly N requests were affected". Kinds:
//  * kFail  -- the replica dies. If it is mid-iteration, the iteration
//    completes first (simulated work already in flight finishes; death is
//    observed at the next scheduling point, as a real health checker
//    would). Its in-flight requests are drained and either re-dispatched or
//    counted as SLO violations, per InFlightPolicy.
//  * kDrain -- graceful decommission: the replica stops accepting new
//    dispatches but keeps iterating until its queue and batcher are empty.
//  * kWedge -- the replica's next iteration parks in the symmetric heap's
//    WaitUntilSignalGe fail-fast path (a signal no producer raises), so it
//    throws CheckError after ServeOptions::signal_wait_timeout_ms. The
//    cluster catches that and accounts the replica as failed: a wedged rank
//    surfaces as a counted replica failure, never a hang.
#pragma once

#include <cstdint>
#include <vector>

namespace comet {

enum class FaultKind {
  kFail,
  kDrain,
  kWedge,
};

inline const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kFail:
      return "fail";
    case FaultKind::kDrain:
      return "drain";
    case FaultKind::kWedge:
      return "wedge";
  }
  return "unknown";
}

struct FaultEvent {
  // Simulated time at which the fault fires (applied at the first
  // scheduling point with now >= time_us).
  double time_us = 0.0;
  int replica = 0;
  FaultKind kind = FaultKind::kFail;
};

// What happens to a failed replica's in-flight (admitted, not completed)
// requests.
enum class InFlightPolicy {
  // Recovered specs go back through the dispatcher (ahead of new arrivals,
  // original order preserved) and are recomputed from scratch elsewhere.
  // Because request outputs depend only on (seed, weights) -- never on
  // batch composition -- a re-dispatched request's digest matches the
  // no-fault run exactly; only its latency pays for the failure.
  kRedispatch,
  // Lost: counted as failed_in_flight and charged to the SLO denominator
  // (like shed -- a latency failure the operator chose to take).
  kCountAsViolation,
};

inline const char* InFlightPolicyName(InFlightPolicy policy) {
  switch (policy) {
    case InFlightPolicy::kRedispatch:
      return "redispatch";
    case InFlightPolicy::kCountAsViolation:
      return "count-as-violation";
  }
  return "unknown";
}

// The full schedule. Events must be sorted by time_us (ties fire in vector
// order); MoeCluster validates at construction.
struct FaultPlan {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }
};

}  // namespace comet
