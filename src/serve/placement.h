// Pluggable placement policies for the cluster dispatcher.
//
// The global dispatcher sees every arriving request and must pick exactly
// one live, accepting replica for it (or shed when none accepts). Policies:
//  * kRoundRobin  -- rotate over replicas, skipping non-accepting ones.
//    Zero state about load; the baseline every balancer is measured against.
//  * kLeastLoaded -- pick the accepting replica with the fewest admitted-
//    but-unexecuted tokens (MoeServer::LoadTokens: admission queue +
//    batcher backlog). Global knowledge, best balance, but in a real
//    deployment this signal is stale by one RTT.
//  * kPowerOfTwo  -- sample two distinct accepting replicas with the
//    policy's own seeded Rng, take the less loaded (the classic
//    power-of-two-choices result: nearly least-loaded balance from two
//    probes instead of a full scan).
//  * kSticky      -- pin each session (RequestSpec::session) to one replica
//    chosen least-loaded at first sight, and keep routing the session there
//    while the replica accepts (decode/KV-cache affinity); re-home only
//    when the pinned replica fails or drains.
//
// Determinism: a Dispatcher is a pure function of (policy, seed, the
// sequence of Pick calls). kPowerOfTwo's sampling uses its own Rng seeded
// at construction, so placement decisions do not perturb -- and are not
// perturbed by -- any other random stream.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/request.h"
#include "util/rng.h"

namespace comet {

enum class PlacementPolicy {
  kRoundRobin,
  kLeastLoaded,
  kPowerOfTwo,
  kSticky,
};

const char* PlacementPolicyName(PlacementPolicy policy);
// Inverse of PlacementPolicyName; throws CheckError on an unknown name.
PlacementPolicy ParsePlacementPolicy(const std::string& name);

// One dispatch decision, recorded (when enabled) for the property tests:
// everything a checker needs to re-verify the policy's choice after the
// fact without re-running the cluster.
struct DispatchDecision {
  int64_t request_id = 0;
  uint64_t session = 0;
  double time_us = 0.0;
  int replica = -1;  // -1: no accepting replica (request shed / failed)
  // Bit r set iff replica r was accepting at decision time.
  uint64_t accepting_mask = 0;
  // kPowerOfTwo: the two sampled candidates and their loads at decision
  // time. -1 when not applicable (other policies, or a single candidate).
  int candidate_a = -1;
  int candidate_b = -1;
  int64_t load_a = 0;
  int64_t load_b = 0;
  // kSticky: the session was already pinned and its replica accepted.
  bool sticky_hit = false;
  // This dispatch re-placed a request recovered from a failed replica.
  bool redispatch = false;
  // Recovery plane: this dispatch was a backoff retry / a speculative
  // hedge copy / a circuit-breaker half-open probe.
  bool retry = false;
  bool hedge = false;
  bool probe = false;
};

class Dispatcher {
 public:
  Dispatcher(PlacementPolicy policy, int num_replicas, uint64_t seed);

  // Picks a replica for `spec` given each replica's current load signal and
  // accepting flag (both indexed by replica, size num_replicas). Returns -1
  // when no replica is accepting. Fills *decision when non-null.
  int Pick(const RequestSpec& spec, std::span<const int64_t> loads,
           const std::vector<bool>& accepting, DispatchDecision* decision);

  // kSticky bookkeeping: drop every pin to `replica` (failed/drained), so
  // affected sessions re-home at their next request.
  void ForgetReplica(int replica);

  PlacementPolicy policy() const { return policy_; }

 private:
  int PickLeastLoaded(std::span<const int64_t> loads,
                      const std::vector<bool>& accepting) const;

  const PlacementPolicy policy_;
  const int num_replicas_;
  Rng rng_;           // kPowerOfTwo sampling stream
  int64_t rr_next_ = 0;  // kRoundRobin cursor
  std::unordered_map<uint64_t, int> session_replica_;  // kSticky pins
};

}  // namespace comet
