#include "serve/batcher.h"

#include <algorithm>

#include "util/check.h"

namespace comet {

ContinuousBatcher::ContinuousBatcher(BatcherOptions options)
    : options_(options) {
  COMET_CHECK_GT(options_.token_budget, 0);
  COMET_CHECK_GE(options_.max_active, 0);
}

void ContinuousBatcher::Reserve(int64_t expected_requests) {
  COMET_CHECK_GE(expected_requests, 0);
  slots_.reserve(static_cast<size_t>(expected_requests));
  live_.reserve(static_cast<size_t>(expected_requests));
}

bool ContinuousBatcher::CanAdmit() const {
  return options_.max_active == 0 || live_count() < options_.max_active;
}

int64_t ContinuousBatcher::Admit(const RequestSpec& spec) {
  COMET_CHECK(CanAdmit()) << "batcher at max_active=" << options_.max_active;
  COMET_CHECK_GT(spec.prompt_tokens, 0);
  COMET_CHECK_GE(spec.decode_tokens, 0);
  const int64_t slot = static_cast<int64_t>(slots_.size());
  slots_.push_back(Slot{spec});
  live_.push_back(slot);
  return slot;
}

BatchPlan ContinuousBatcher::Pack() {
  BatchPlan plan;
  PackInto(&plan);
  return plan;
}

void ContinuousBatcher::PackInto(BatchPlan* out) {
  BatchPlan& plan = *out;
  plan.entries.clear();
  plan.iteration = iteration_++;
  int64_t budget = options_.token_budget;

  // Decode class: one token per in-flight request, admission order.
  for (int64_t slot : live_) {
    if (budget == 0) {
      break;
    }
    const Slot& s = slots_[static_cast<size_t>(slot)];
    if (s.prefill_done < s.spec.prompt_tokens ||
        s.decode_done >= s.spec.decode_tokens) {
      continue;
    }
    plan.entries.push_back(BatchEntry{
        .slot = slot,
        .request_id = s.spec.id,
        .start_pos = s.spec.prompt_tokens + s.decode_done,
        .num_tokens = 1,
        .decode = true,
    });
    --budget;
  }

  // Prefill class: chunked, admission order, strict FIFO -- the loop stops
  // at budget exhaustion rather than skipping ahead to a later prompt that
  // would happen to fit.
  for (int64_t slot : live_) {
    if (budget == 0) {
      break;
    }
    const Slot& s = slots_[static_cast<size_t>(slot)];
    if (s.prefill_done >= s.spec.prompt_tokens) {
      continue;
    }
    const int64_t chunk =
        std::min(s.spec.prompt_tokens - s.prefill_done, budget);
    plan.entries.push_back(BatchEntry{
        .slot = slot,
        .request_id = s.spec.id,
        .start_pos = s.prefill_done,
        .num_tokens = chunk,
        .decode = false,
    });
    budget -= chunk;
  }
}

std::vector<int64_t> ContinuousBatcher::Complete(const BatchPlan& plan) {
  std::vector<int64_t> finished;
  CompleteInto(plan, &finished);
  return finished;
}

void ContinuousBatcher::CompleteInto(const BatchPlan& plan,
                                     std::vector<int64_t>* out) {
  for (const BatchEntry& e : plan.entries) {
    COMET_CHECK_GE(e.slot, 0);
    COMET_CHECK_LT(e.slot, static_cast<int64_t>(slots_.size()));
    Slot& s = slots_[static_cast<size_t>(e.slot)];
    COMET_CHECK(!s.finished) << "request " << s.spec.id << " already finished";
    if (e.decode) {
      COMET_CHECK_EQ(e.start_pos, s.spec.prompt_tokens + s.decode_done);
      COMET_CHECK_EQ(e.num_tokens, 1);
      ++s.decode_done;
    } else {
      COMET_CHECK_EQ(e.start_pos, s.prefill_done);
      s.prefill_done += e.num_tokens;
      COMET_CHECK_LE(s.prefill_done, s.spec.prompt_tokens);
    }
  }
  std::vector<int64_t>& finished = *out;
  finished.clear();
  for (const BatchEntry& e : plan.entries) {
    Slot& s = slots_[static_cast<size_t>(e.slot)];
    if (!s.finished && SlotFinished(s)) {
      s.finished = true;
      finished.push_back(e.slot);
    }
  }
  std::sort(finished.begin(), finished.end());
  if (!finished.empty()) {
    std::erase_if(live_, [&](int64_t slot) {
      return slots_[static_cast<size_t>(slot)].finished;
    });
  }
}

void ContinuousBatcher::Cancel(int64_t slot) {
  COMET_CHECK_GE(slot, 0);
  COMET_CHECK_LT(slot, static_cast<int64_t>(slots_.size()));
  Slot& s = slots_[static_cast<size_t>(slot)];
  COMET_CHECK(!s.finished) << "cancel of finished request " << s.spec.id;
  s.finished = true;  // terminal: never packed again
  std::erase(live_, slot);
}

bool ContinuousBatcher::SlotFinished(const Slot& s) {
  return s.prefill_done == s.spec.prompt_tokens &&
         s.decode_done == s.spec.decode_tokens;
}

const ContinuousBatcher::Slot& ContinuousBatcher::At(int64_t slot) const {
  COMET_CHECK_GE(slot, 0);
  COMET_CHECK_LT(slot, static_cast<int64_t>(slots_.size()));
  return slots_[static_cast<size_t>(slot)];
}

const RequestSpec& ContinuousBatcher::spec(int64_t slot) const {
  return At(slot).spec;
}

int64_t ContinuousBatcher::prefill_done(int64_t slot) const {
  return At(slot).prefill_done;
}

int64_t ContinuousBatcher::decode_done(int64_t slot) const {
  return At(slot).decode_done;
}

bool ContinuousBatcher::finished(int64_t slot) const {
  return At(slot).finished;
}

}  // namespace comet
