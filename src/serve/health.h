// Per-replica health tracking: failure EWMA feeding a circuit breaker.
//
// The cluster observes one signal per replica per scheduling decision --
// success (a request completed there) or failure (the replica died, wedged,
// or served a corrupted payload) -- and folds it into an exponentially
// weighted moving average. When the failure EWMA crosses a threshold the
// breaker OPENS: the dispatcher stops sending the replica traffic even if it
// is nominally accepting. After a deterministic backoff (doubling on each
// consecutive re-open, capped) the breaker goes HALF-OPEN and admits a
// bounded number of probe requests; a probe success closes the breaker and
// resets the backoff, a probe failure re-opens it with a longer wait.
//
//        success               ewma >= open_threshold
//   +--> kClosed ------------------------------------+
//   |                                                v
//   |    probe success                       kOpen (no dispatch,
//   +--- kHalfOpen <------------------------  backoff doubling)
//          |      now >= open_until                  ^
//          +-----------------------------------------+
//                       probe failure
//
// Everything runs on the SIMULATED clock and is pure state-machine -- no
// RNG, no wall time -- so the breaker's trajectory is bit-identical across
// host thread counts and is part of the cluster's determinism contract.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace comet {

struct HealthOptions {
  // EWMA smoothing: ewma <- (1 - alpha) * ewma + alpha * outcome, where
  // outcome is 1.0 for a failure, 0.0 for a success. In (0, 1].
  double ewma_alpha = 0.3;
  // Failure EWMA at or above this opens the breaker. In (0, 1]. The default
  // (0.5 with alpha 0.3) opens after ~2 consecutive failures from healthy.
  double open_threshold = 0.5;
  // Simulated-us wait before an open breaker goes half-open. Doubles (by
  // backoff_multiplier) on each consecutive re-open, capped at
  // max_backoff_us; a successful probe resets the streak.
  double probe_backoff_us = 2'000.0;
  double backoff_multiplier = 2.0;
  double max_backoff_us = 1e8;
  // Probes allowed in flight while half-open.
  int half_open_probes = 1;
};

enum class BreakerState { kClosed, kOpen, kHalfOpen };

inline const char* BreakerStateName(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

class ReplicaHealth {
 public:
  ReplicaHealth(int num_replicas, HealthOptions options);

  // A request completed on `r`. Closes a half-open breaker (probe success),
  // resets the backoff streak, decays the failure EWMA.
  void ObserveSuccess(int r, double now_us);
  // Replica `r` failed a request (or a probe). Bumps the EWMA; opens the
  // breaker if the threshold is crossed or if `r` was half-open.
  void ObserveFailure(int r, double now_us);
  // Replica `r` died outright (fail/wedge/corrupt fault). Records a failure
  // AND forces the breaker open regardless of the EWMA, so a recovered
  // replica re-enters through the half-open probe path.
  void ForceOpen(int r, double now_us);

  // True when the dispatcher may send `r` a request at `now_us`: closed, or
  // half-open with probe capacity. Open breakers refuse.
  bool AllowDispatch(int r, double now_us) const;
  // The caller admitted a request to a half-open `r`: count it as a probe.
  // No-op unless half-open.
  void OnProbeDispatched(int r, double now_us);

  // Observable state at `now_us` (an open breaker whose backoff elapsed
  // reports half-open).
  BreakerState state(int r, double now_us) const;
  double failure_ewma(int r) const { return reps_[Check(r)].ewma; }
  double open_until(int r) const { return reps_[Check(r)].open_until; }
  int consecutive_opens(int r) const { return reps_[Check(r)].streak; }
  int64_t total_opens() const { return total_opens_; }
  int64_t total_probes() const { return total_probes_; }

  const HealthOptions& options() const { return options_; }

 private:
  struct Rep {
    double ewma = 0.0;
    bool open = false;          // open OR half-open (split by open_until)
    double open_until = 0.0;    // when open -> half-open
    int streak = 0;             // consecutive opens without a probe success
    int probes_in_flight = 0;   // while half-open
  };

  size_t Check(int r) const;
  bool HalfOpen(const Rep& rep, double now_us) const {
    return rep.open && now_us >= rep.open_until;
  }
  void Open(Rep& rep, double now_us);

  HealthOptions options_;
  std::vector<Rep> reps_;
  int64_t total_opens_ = 0;
  int64_t total_probes_ = 0;
};

}  // namespace comet
