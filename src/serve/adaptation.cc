#include "serve/adaptation.h"

#include "util/check.h"

namespace comet {

void AdaptationOptions::Validate() const {
  COMET_CHECK_GT(ewma_decay, 0.0) << "ewma_decay must be in (0, 1]";
  COMET_CHECK_LE(ewma_decay, 1.0) << "ewma_decay must be in (0, 1]";
  COMET_CHECK_GT(cool_factor, 0.0) << "cool_factor must be positive";
  COMET_CHECK_GT(hot_factor, cool_factor)
      << "hysteresis requires cool_factor < hot_factor (got cool="
      << cool_factor << ", hot=" << hot_factor << ")";
  COMET_CHECK_GE(max_replicated_experts, 0);
  COMET_CHECK_GE(cooldown_iterations, 0);
}

HotExpertTracker::HotExpertTracker(const AdaptationOptions& options,
                                   int64_t num_experts, int ep)
    : options_(options), num_experts_(num_experts), ep_(ep) {
  options_.Validate();
  COMET_CHECK_GT(num_experts_, 0);
  COMET_CHECK_GT(ep_, 0);
  COMET_CHECK_EQ(num_experts_ % ep_, 0)
      << "block expert placement requires ep | num_experts";
  experts_per_group_ = num_experts_ / ep_;
  ewma_.assign(static_cast<size_t>(num_experts_),
               1.0 / static_cast<double>(num_experts_));
  replicas_.assign(static_cast<size_t>(options_.max_replicated_experts),
                   ReplicaAssignment{});
  cooldown_.assign(static_cast<size_t>(options_.max_replicated_experts), 0);
  slot_of_expert_.assign(static_cast<size_t>(num_experts_), -1);
  group_load_.assign(static_cast<size_t>(ep_), 0.0);
  events_.reserve(2);
}

double HotExpertTracker::ewma(int64_t expert) const {
  COMET_CHECK_GE(expert, 0);
  COMET_CHECK_LT(expert, num_experts_);
  return ewma_[static_cast<size_t>(expert)];
}

int HotExpertTracker::active_replicas() const {
  int active = 0;
  for (const ReplicaAssignment& a : replicas_) {
    if (a.expert >= 0) {
      ++active;
    }
  }
  return active;
}

int HotExpertTracker::Observe(std::span<const int64_t> loads) {
  COMET_CHECK_EQ(static_cast<int64_t>(loads.size()), num_experts_);
  events_.clear();

  // EWMA over load FRACTIONS (empty iterations leave the estimate alone:
  // no tokens carry no information about skew).
  int64_t total = 0;
  for (int64_t l : loads) {
    total += l;
  }
  if (total > 0) {
    const double d = options_.ewma_decay;
    for (int64_t e = 0; e < num_experts_; ++e) {
      const double f = static_cast<double>(loads[static_cast<size_t>(e)]) /
                       static_cast<double>(total);
      ewma_[static_cast<size_t>(e)] =
          (1.0 - d) * ewma_[static_cast<size_t>(e)] + d * f;
    }
  }
  for (int64_t& c : cooldown_) {
    if (c > 0) {
      --c;
    }
  }
  if (!options_.enabled || options_.max_replicated_experts == 0 || ep_ < 2) {
    return 0;
  }
  const double uniform = 1.0 / static_cast<double>(num_experts_);
  const int num_slots = options_.max_replicated_experts;

  // Retire (at most one per Observe): lowest-index active quiescent slot
  // whose expert has cooled below cool_factor/E.
  for (int s = 0; s < num_slots; ++s) {
    ReplicaAssignment& a = replicas_[static_cast<size_t>(s)];
    if (a.expert < 0 || cooldown_[static_cast<size_t>(s)] > 0) {
      continue;
    }
    if (ewma_[static_cast<size_t>(a.expert)] <=
        options_.cool_factor * uniform) {
      events_.push_back(Event{s, a.expert, a.ep_group, /*promote=*/false});
      slot_of_expert_[static_cast<size_t>(a.expert)] = -1;
      a = ReplicaAssignment{};
      cooldown_[static_cast<size_t>(s)] = options_.cooldown_iterations;
      ++retirements_;
      break;
    }
  }

  // Promote (at most one per Observe): hottest unreplicated expert at or
  // above hot_factor/E (ties to the lowest expert index), into the
  // lowest-index free quiescent slot. A slot just retired above is still in
  // cooldown, so one Observe never recycles a slot -- the anti-flap rule.
  int free_slot = -1;
  for (int s = 0; s < num_slots; ++s) {
    if (replicas_[static_cast<size_t>(s)].expert < 0 &&
        cooldown_[static_cast<size_t>(s)] == 0) {
      free_slot = s;
      break;
    }
  }
  if (free_slot < 0) {
    return static_cast<int>(events_.size());
  }
  int64_t hottest = -1;
  double hottest_ewma = 0.0;
  for (int64_t e = 0; e < num_experts_; ++e) {
    if (slot_of_expert_[static_cast<size_t>(e)] >= 0) {
      continue;
    }
    const double v = ewma_[static_cast<size_t>(e)];
    if (v >= options_.hot_factor * uniform &&
        (hottest < 0 || v > hottest_ewma)) {
      hottest = e;
      hottest_ewma = v;
    }
  }
  if (hottest < 0) {
    return static_cast<int>(events_.size());
  }
  // Target: least effective EWMA load among groups other than the home
  // group. A replicated expert contributes half its EWMA to each side of
  // its split; everything else loads its home group fully. Ties go to the
  // lowest group index (strict < keeps the earliest minimum).
  for (double& g : group_load_) {
    g = 0.0;
  }
  for (int64_t e = 0; e < num_experts_; ++e) {
    const int home = static_cast<int>(e / experts_per_group_);
    const int32_t slot = slot_of_expert_[static_cast<size_t>(e)];
    if (slot >= 0) {
      const int rg = replicas_[static_cast<size_t>(slot)].ep_group;
      group_load_[static_cast<size_t>(home)] +=
          0.5 * ewma_[static_cast<size_t>(e)];
      group_load_[static_cast<size_t>(rg)] +=
          0.5 * ewma_[static_cast<size_t>(e)];
    } else {
      group_load_[static_cast<size_t>(home)] += ewma_[static_cast<size_t>(e)];
    }
  }
  const int home = static_cast<int>(hottest / experts_per_group_);
  int target = -1;
  for (int g = 0; g < ep_; ++g) {
    if (g == home) {
      continue;
    }
    if (target < 0 ||
        group_load_[static_cast<size_t>(g)] <
            group_load_[static_cast<size_t>(target)]) {
      target = g;
    }
  }
  COMET_CHECK_GE(target, 0);
  events_.push_back(Event{free_slot, hottest, target, /*promote=*/true});
  replicas_[static_cast<size_t>(free_slot)] =
      ReplicaAssignment{hottest, target, free_slot};
  slot_of_expert_[static_cast<size_t>(hottest)] =
      static_cast<int32_t>(free_slot);
  cooldown_[static_cast<size_t>(free_slot)] = options_.cooldown_iterations;
  ++promotions_;
  return static_cast<int>(events_.size());
}

}  // namespace comet
