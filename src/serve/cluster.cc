#include "serve/cluster.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <map>
#include <set>
#include <tuple>

#include "util/check.h"
#include "util/rng.h"

namespace comet {

MoeCluster::MoeCluster(ClusterOptions options, ClusterSpec replica_cluster)
    : options_(std::move(options)),
      replica_cluster_(replica_cluster),
      cluster_metrics_(obs::ClusterMetrics::Register(cluster_registry_)) {
  COMET_CHECK_GT(options_.replicas, 0);
  COMET_CHECK_LE(options_.replicas, 64) << "DispatchDecision::accepting_mask";
  COMET_CHECK_GE(options_.global_queue_tokens, 0);
  COMET_CHECK_GE(options_.recovery_warmup_us, 0.0)
      << "ClusterOptions::recovery_warmup_us";
  COMET_CHECK_GE(options_.retry_budget, 0) << "ClusterOptions::retry_budget";
  COMET_CHECK_GT(options_.retry_backoff_us, 0.0)
      << "ClusterOptions::retry_backoff_us";
  COMET_CHECK_GE(options_.retry_jitter_frac, 0.0)
      << "ClusterOptions::retry_jitter_frac";
  COMET_CHECK_LE(options_.retry_jitter_frac, 1.0)
      << "ClusterOptions::retry_jitter_frac";
  COMET_CHECK_GE(options_.hedge_queue_wait_us, 0.0)
      << "ClusterOptions::hedge_queue_wait_us";
  ValidateFaultPlan(options_.faults, options_.replicas);
  // Validates HealthOptions loudly at construction even when health is
  // disabled -- a malformed config should never ride along silently.
  ReplicaHealth probe(options_.replicas, options_.health);
  (void)probe;
  replicas_.reserve(static_cast<size_t>(options_.replicas));
  for (int r = 0; r < options_.replicas; ++r) {
    replicas_.push_back(
        std::make_unique<MoeServer>(options_.server, replica_cluster_));
  }
  archived_spans_.resize(static_cast<size_t>(options_.replicas));
}

MoeCluster::~MoeCluster() = default;

ClusterReport MoeCluster::Run(const std::vector<RequestSpec>& arrivals) {
  for (size_t i = 1; i < arrivals.size(); ++i) {
    COMET_CHECK_GE(arrivals[i].arrival_us, arrivals[i - 1].arrival_us)
        << "arrivals must be sorted by arrival_us";
  }

  const int R = num_replicas();
  const bool health_on = options_.health_enabled;
  const bool tel = options_.server.telemetry.enabled;
  for (auto& server : replicas_) {
    server->BeginRun();
  }
  cluster_registry_.ResetValues();
  if (tel && cluster_events_.capacity() != options_.server.telemetry.span_capacity) {
    cluster_events_.Reserve(options_.server.telemetry.span_capacity);
  } else {
    cluster_events_.Clear();
  }
  for (auto& archive : archived_spans_) {
    archive.clear();
  }
  // Breaker states as last recorded, polled once per loop pass so every
  // transition becomes a trace instant.
  std::vector<BreakerState> breaker_seen(static_cast<size_t>(R),
                                         BreakerState::kClosed);
  Dispatcher dispatcher(options_.placement, R, options_.placement_seed);
  ReplicaHealth health(R, options_.health);
  Rng retry_rng(options_.retry_seed);

  std::vector<bool> alive(static_cast<size_t>(R), true);
  std::vector<bool> accepting(static_cast<size_t>(R), true);
  std::vector<bool> busy(static_cast<size_t>(R), false);
  std::vector<bool> fail_pending(static_cast<size_t>(R), false);
  std::vector<bool> wedge_armed(static_cast<size_t>(R), false);
  std::vector<bool> warming(static_cast<size_t>(R), false);
  std::vector<double> busy_until(static_cast<size_t>(R), 0.0);
  std::vector<double> warm_until(static_cast<size_t>(R), 0.0);
  // Completed records of replica r already observed by the winner logic
  // below (prefix of View().completed; cancellation only ever erases
  // UNOBSERVED records, so the prefix is stable).
  std::vector<size_t> observed(static_cast<size_t>(R), 0);

  // Finished work harvested from replaced (kRecover) replica incarnations;
  // final aggregation reads archive + the live incarnation's View.
  struct Archive {
    std::vector<RequestRecord> completed;
    std::vector<double> queue_waits, ttfts, itls, e2es;
    int64_t iterations = 0;
    int64_t batched_tokens = 0;
    int64_t padding_tokens = 0;
    int64_t promotions = 0;
    int64_t retirements = 0;
    int64_t replicated_rows = 0;
  };
  std::vector<Archive> archives(static_cast<size_t>(R));
  const auto archive_replica = [&](int r) {
    const RunView view = replicas_[static_cast<size_t>(r)]->View();
    Archive& a = archives[static_cast<size_t>(r)];
    a.completed.insert(a.completed.end(), view.completed.begin(),
                       view.completed.end());
    a.queue_waits.insert(a.queue_waits.end(), view.queue_waits.begin(),
                         view.queue_waits.end());
    a.ttfts.insert(a.ttfts.end(), view.ttfts.begin(), view.ttfts.end());
    a.itls.insert(a.itls.end(), view.itls.begin(), view.itls.end());
    a.e2es.insert(a.e2es.end(), view.e2es.begin(), view.e2es.end());
    a.iterations += view.iterations;
    a.batched_tokens += view.batched_tokens;
    a.padding_tokens += view.padding_tokens;
    a.promotions += view.promotions;
    a.retirements += view.retirements;
    a.replicated_rows += view.replicated_rows;
  };

  // Every arrival gets exactly one Track; at loop exit each is terminal --
  // done (completed somewhere, exactly once) or lost (counted in exactly
  // one of shed / failed_in_flight / retries_exhausted). That partition IS
  // the conservation law the chaos suite asserts.
  struct Track {
    RequestSpec spec;
    int attempts = 0;           // dispatch attempts (first + retries)
    bool hedged = false;        // one-shot hedge consumed
    int hedge_replica = -1;     // where the hedge copy went
    double dispatched_us = -1.0;  // last successful primary admission
    std::vector<int> copies;    // replicas currently holding a copy
    bool done = false;
    bool lost = false;
  };
  std::map<int64_t, Track> track;
  // Due-time-ordered backoff retries; seq breaks ties deterministically.
  std::set<std::tuple<double, int64_t, int64_t>> pending;  // (ready, seq, id)
  int64_t pending_seq = 0;
  std::deque<int64_t> backlog;  // kRedispatch: re-dispatch now, in order

  ClusterReport report;
  report.offered = static_cast<int64_t>(arrivals.size());

  double now = 0.0;
  size_t next_arrival = 0;
  size_t next_fault = 0;

  const auto loads = [&] {
    std::vector<int64_t> v(static_cast<size_t>(R), 0);
    for (int r = 0; r < R; ++r) {
      v[static_cast<size_t>(r)] = replicas_[static_cast<size_t>(r)]
                                      ->LoadTokens();
    }
    return v;
  };
  const auto global_load = [&] {
    int64_t total = 0;
    for (int r = 0; r < R; ++r) {
      if (alive[static_cast<size_t>(r)]) {
        total += replicas_[static_cast<size_t>(r)]->LoadTokens();
      }
    }
    return total;
  };
  // What every placement policy actually sees: accepting AND (when health
  // is on) allowed by the replica's circuit breaker.
  const auto eligibility = [&] {
    std::vector<bool> e(static_cast<size_t>(R), false);
    for (int r = 0; r < R; ++r) {
      e[static_cast<size_t>(r)] =
          accepting[static_cast<size_t>(r)] &&
          (!health_on || health.AllowDispatch(r, now));
    }
    return e;
  };

  // Schedules the next backoff retry for a track whose last copy failed, or
  // exhausts its budget. Deterministic: the jitter draw comes from the
  // dedicated retry stream, consumed in the (deterministic) event order.
  const auto schedule_retry = [&](Track& t) {
    if (t.attempts - 1 >= options_.retry_budget) {
      ++report.retries_exhausted;
      t.lost = true;
      return;
    }
    const double jitter =
        1.0 + options_.retry_jitter_frac * retry_rng.NextDouble();
    const double delay = options_.retry_backoff_us *
                         std::pow(2.0, static_cast<double>(t.attempts - 1)) *
                         jitter;
    pending.emplace(now + delay, pending_seq++, t.spec.id);
  };

  // Offers one copy of `t` to replica `pick`'s admission queue. Handles the
  // shed-oldest eviction: the evicted request loses that copy, and losing
  // its LAST copy is a terminal shed (admission control, not a failure --
  // evictions are never retried, matching the single-server semantics).
  const auto offer_to = [&](int pick, Track& t) -> bool {
    const AdmissionQueue::Admit admit =
        replicas_[static_cast<size_t>(pick)]->Offer(t.spec);
    if (admit.evicted.has_value()) {
      Track& ev = track.at(admit.evicted->id);
      COMET_CHECK(!ev.done && !ev.lost);
      std::erase(ev.copies, pick);
      if (ev.copies.empty()) {
        ++report.shed;
        ev.lost = true;
      }
    }
    if (!admit.admitted) {
      return false;
    }
    t.copies.push_back(pick);
    return true;
  };

  // One PRIMARY copy through the placement policy (arrival, kRedispatch
  // recovery, or backoff retry). A miss or queue refusal is terminal for
  // arrivals/redispatches (shed / failed_in_flight, the PR6 accounting) but
  // consumes-and-reschedules for backoff retries, so a retried request
  // keeps retrying until it lands or its budget runs out.
  const auto dispatch_one = [&](Track& t, bool redispatch, bool retry) {
    DispatchDecision decision;
    const std::vector<int64_t> load_now = loads();
    const std::vector<bool> elig = eligibility();
    const int pick = dispatcher.Pick(t.spec, load_now, elig, &decision);
    decision.time_us = now;
    decision.redispatch = redispatch;
    decision.retry = retry;
    bool admitted = false;
    if (pick >= 0) {
      ++report.dispatched;
      if (redispatch) {
        ++report.redispatched;
      }
      const bool probe =
          health_on && health.state(pick, now) == BreakerState::kHalfOpen;
      admitted = offer_to(pick, t);
      if (admitted) {
        t.dispatched_us = now;
        if (probe) {
          health.OnProbeDispatched(pick, now);
          decision.probe = true;
        }
        if (tel) {
          cluster_events_.Record(redispatch ? obs::SpanKind::kRedispatch
                                            : obs::SpanKind::kDispatch,
                                 now, now, static_cast<uint64_t>(t.spec.id),
                                 static_cast<double>(t.attempts), pick);
        }
      }
    }
    if (!admitted) {
      if (retry) {
        schedule_retry(t);
      } else if (pick < 0 && redispatch) {
        ++report.failed_in_flight;
        t.lost = true;
      } else {
        ++report.shed;
        t.lost = true;
      }
    }
    if (options_.record_dispatch_log) {
      report.dispatch_log.push_back(decision);
    }
  };

  // Replica death: account it, open its breaker, drain its in-flight
  // copies. A drained request that still has a copy elsewhere (hedge) just
  // loses this one; losing the LAST copy goes through the InFlightPolicy.
  const auto die = [&](int r, bool corrupted) {
    alive[static_cast<size_t>(r)] = false;
    accepting[static_cast<size_t>(r)] = false;
    warming[static_cast<size_t>(r)] = false;
    ++report.replica_failures;
    if (tel) {
      cluster_events_.Record(obs::SpanKind::kReplicaDeath, now, now,
                             static_cast<uint64_t>(r), corrupted ? 1.0 : 0.0,
                             r);
    }
    if (corrupted) {
      ++report.corruptions_detected;
    }
    dispatcher.ForgetReplica(r);
    if (health_on) {
      health.ForceOpen(r, now);
    }
    const std::vector<RequestSpec> in_flight =
        replicas_[static_cast<size_t>(r)]->DrainInFlight();
    for (const RequestSpec& spec : in_flight) {
      Track& t = track.at(spec.id);
      COMET_CHECK(!t.done && !t.lost);
      std::erase(t.copies, r);
      if (!t.copies.empty()) {
        continue;  // the hedge (or primary) copy lives on elsewhere
      }
      switch (options_.in_flight) {
        case InFlightPolicy::kRedispatch:
          backlog.push_back(spec.id);
          break;
        case InFlightPolicy::kCountAsViolation:
          ++report.failed_in_flight;
          t.lost = true;
          break;
        case InFlightPolicy::kRetryBackoff:
          schedule_retry(t);
          break;
      }
    }
  };

  // Observes replica r's newly completed requests. The FIRST observed
  // completion of a request wins (observation order is deterministic:
  // retirement order within a replica, replica index order across them);
  // every other copy is cancelled wherever it is and its executed tokens
  // become wasted_tokens.
  const auto harvest_completions = [&](int r) {
    const RunView view = replicas_[static_cast<size_t>(r)]->View();
    while (observed[static_cast<size_t>(r)] < view.completed.size()) {
      const RequestRecord& rec =
          view.completed[observed[static_cast<size_t>(r)]];
      ++observed[static_cast<size_t>(r)];
      Track& t = track.at(rec.id);
      COMET_CHECK(!t.done) << "request " << rec.id << " completed twice";
      COMET_CHECK(!t.lost) << "request " << rec.id << " completed after loss";
      t.done = true;
      if (t.hedge_replica == r) {
        ++report.hedge_wins;
        if (tel) {
          cluster_events_.Record(obs::SpanKind::kHedgeWin, now, now,
                                 static_cast<uint64_t>(rec.id), 0.0, r);
        }
      }
      for (const int other : t.copies) {
        if (other == r) {
          continue;
        }
        const MoeServer::CancelResult cancel =
            replicas_[static_cast<size_t>(other)]->CancelRequest(rec.id);
        if (cancel.found) {
          report.wasted_tokens += cancel.executed_tokens;
        }
      }
      t.copies.assign(1, r);
      if (health_on) {
        health.ObserveSuccess(r, now);
      }
    }
  };

  while (true) {
    // A. Fire due faults. kFail on a busy replica defers death to the end
    // of the in-flight iteration (B), but stops dispatches immediately.
    // kRecover rebuilds a DEAD replica from scratch: fresh executor, heap,
    // EP group, cold profile cache; it starts accepting only after the
    // configured warm-up.
    while (next_fault < options_.faults.events.size() &&
           options_.faults.events[next_fault].time_us <= now) {
      const FaultEvent& ev = options_.faults.events[next_fault];
      ++next_fault;
      const int r = ev.replica;
      if (ev.kind == FaultKind::kRecover) {
        if (alive[static_cast<size_t>(r)]) {
          continue;  // never actually went down; the recovery is moot
        }
        archive_replica(r);
        auto fresh =
            std::make_unique<MoeServer>(options_.server, replica_cluster_);
        fresh->BeginRun();
        if (tel) {
          // The dead incarnation's telemetry outlives it: spans move to the
          // slot archive, counter/histogram totals merge into the fresh
          // registry (gauges start from the fresh incarnation's truth).
          replicas_[static_cast<size_t>(r)]->telemetry().spans().AppendTo(
              &archived_spans_[static_cast<size_t>(r)]);
          fresh->telemetry().registry().MergeFrom(
              replicas_[static_cast<size_t>(r)]->telemetry().registry());
          cluster_events_.Record(obs::SpanKind::kReplicaRecover, now, now,
                                 static_cast<uint64_t>(r), 0.0, r);
        }
        replicas_[static_cast<size_t>(r)] = std::move(fresh);
        observed[static_cast<size_t>(r)] = 0;
        busy[static_cast<size_t>(r)] = false;
        fail_pending[static_cast<size_t>(r)] = false;
        wedge_armed[static_cast<size_t>(r)] = false;
        alive[static_cast<size_t>(r)] = true;
        warming[static_cast<size_t>(r)] = true;
        warm_until[static_cast<size_t>(r)] = now + options_.recovery_warmup_us;
        ++report.replicas_recovered;
        continue;
      }
      if (!alive[static_cast<size_t>(r)]) {
        continue;  // already dead; the fault is moot
      }
      if (tel) {
        obs::SpanKind kind = obs::SpanKind::kFaultFail;
        switch (ev.kind) {
          case FaultKind::kFail:
            kind = obs::SpanKind::kFaultFail;
            break;
          case FaultKind::kDrain:
            kind = obs::SpanKind::kFaultDrain;
            break;
          case FaultKind::kWedge:
            kind = obs::SpanKind::kFaultWedge;
            break;
          case FaultKind::kCorrupt:
            kind = obs::SpanKind::kFaultCorrupt;
            break;
          case FaultKind::kRecover:
            break;  // unreachable: handled above
        }
        cluster_events_.Record(kind, now, now, static_cast<uint64_t>(r), 0.0,
                               r);
      }
      switch (ev.kind) {
        case FaultKind::kFail:
          accepting[static_cast<size_t>(r)] = false;
          warming[static_cast<size_t>(r)] = false;
          if (busy[static_cast<size_t>(r)]) {
            fail_pending[static_cast<size_t>(r)] = true;
          } else {
            die(r, /*corrupted=*/false);
          }
          break;
        case FaultKind::kDrain:
          if (accepting[static_cast<size_t>(r)]) {
            accepting[static_cast<size_t>(r)] = false;
            ++report.replicas_drained;
            dispatcher.ForgetReplica(r);
          }
          break;
        case FaultKind::kWedge:
          wedge_armed[static_cast<size_t>(r)] = true;
          break;
        case FaultKind::kCorrupt:
          replicas_[static_cast<size_t>(r)]->CorruptNextIteration();
          break;
        case FaultKind::kRecover:
          break;  // handled above
      }
    }

    // Recovered replicas whose warm-up has elapsed re-enter the accepting
    // set (their breaker may still gate them through half-open probes).
    for (int r = 0; r < R; ++r) {
      if (warming[static_cast<size_t>(r)] &&
          warm_until[static_cast<size_t>(r)] <= now) {
        warming[static_cast<size_t>(r)] = false;
        accepting[static_cast<size_t>(r)] = true;
      }
    }

    // B. Retire iterations whose simulated end has been reached: observe
    // their completions (winner logic), then execute any deferred death --
    // the in-flight iteration stands, exactly like PR 6.
    for (int r = 0; r < R; ++r) {
      if (busy[static_cast<size_t>(r)] &&
          busy_until[static_cast<size_t>(r)] <= now) {
        busy[static_cast<size_t>(r)] = false;
        harvest_completions(r);
        if (fail_pending[static_cast<size_t>(r)]) {
          fail_pending[static_cast<size_t>(r)] = false;
          die(r, /*corrupted=*/false);
        }
      }
    }

    // C. Dispatch, oldest obligations first: due backoff retries, then
    // kRedispatch recoveries, then arrivals up to now, then hedges.
    while (!pending.empty() && std::get<0>(*pending.begin()) <= now) {
      const int64_t id = std::get<2>(*pending.begin());
      pending.erase(pending.begin());
      Track& t = track.at(id);
      COMET_CHECK(!t.done && !t.lost);
      ++t.attempts;
      ++report.retries;
      if (tel) {
        cluster_events_.Record(obs::SpanKind::kRetry, now, now,
                               static_cast<uint64_t>(id),
                               static_cast<double>(t.attempts - 1));
      }
      dispatch_one(t, /*redispatch=*/true, /*retry=*/true);
    }
    while (!backlog.empty()) {
      const int64_t id = backlog.front();
      backlog.pop_front();
      Track& t = track.at(id);
      ++t.attempts;
      dispatch_one(t, /*redispatch=*/true, /*retry=*/false);
    }
    while (next_arrival < arrivals.size() &&
           arrivals[next_arrival].arrival_us <= now) {
      const RequestSpec& spec = arrivals[next_arrival];
      ++next_arrival;
      Track& t = track[spec.id];
      t.spec = spec;
      if (options_.global_queue_tokens > 0 &&
          global_load() >= options_.global_queue_tokens) {
        ++report.shed;  // global admission bound: shed outright
        t.lost = true;
        if (options_.record_dispatch_log) {
          DispatchDecision d;
          d.request_id = spec.id;
          d.session = spec.session;
          d.time_us = now;
          report.dispatch_log.push_back(d);
        }
        continue;
      }
      t.attempts = 1;
      dispatch_one(t, /*redispatch=*/false, /*retry=*/false);
    }
    // Hedging: a request still queue-waiting hedge_queue_wait_us after its
    // admission gets ONE speculative copy on the least-loaded other
    // eligible replica (chosen directly, NOT through the dispatcher, so
    // hedging never perturbs the rr cursor / p2c stream and placement
    // decisions are identical with hedging on or off). One-shot: the
    // deadline consumes the hedge whether or not a copy could be placed.
    if (options_.hedge_queue_wait_us > 0.0) {
      for (auto& [id, t] : track) {
        // The deadline MUST be computed as dispatched_us + wait -- the same
        // expression the clock-advance phase (E) uses -- not as a
        // now - dispatched_us difference: the two can disagree by one ulp,
        // and a deadline the clock can land on but never satisfy livelocks
        // the loop.
        if (t.done || t.lost || t.hedged || t.copies.size() != 1 ||
            t.dispatched_us < 0.0 ||
            t.dispatched_us + options_.hedge_queue_wait_us > now) {
          continue;
        }
        t.hedged = true;
        const int primary = t.copies[0];
        if (replicas_[static_cast<size_t>(primary)]->RequestStarted(id)) {
          continue;  // already executing: a second copy buys nothing
        }
        const std::vector<int64_t> load_now = loads();
        const std::vector<bool> elig = eligibility();
        int pick = -1;
        for (int r = 0; r < R; ++r) {
          if (r == primary || !elig[static_cast<size_t>(r)]) {
            continue;
          }
          if (pick < 0 || load_now[static_cast<size_t>(r)] <
                              load_now[static_cast<size_t>(pick)]) {
            pick = r;
          }
        }
        if (pick < 0) {
          continue;  // nowhere to hedge to
        }
        if (offer_to(pick, t)) {
          t.hedge_replica = pick;
          ++report.hedged;
          ++report.dispatched;
          if (tel) {
            cluster_events_.Record(obs::SpanKind::kHedge, now, now,
                                   static_cast<uint64_t>(id), 0.0, pick);
          }
          if (options_.record_dispatch_log) {
            DispatchDecision d;
            d.request_id = id;
            d.session = t.spec.session;
            d.time_us = now;
            d.replica = pick;
            d.hedge = true;
            for (int r = 0; r < R; ++r) {
              if (elig[static_cast<size_t>(r)]) {
                d.accepting_mask |= uint64_t{1} << r;
              }
            }
            report.dispatch_log.push_back(d);
          }
        }
      }
    }

    // D. Start one iteration on every alive idle replica with work, in
    // replica-index order (drained replicas keep stepping until empty; a
    // wedge-armed replica is stepped so the wedge can fire).
    for (int r = 0; r < R; ++r) {
      if (!alive[static_cast<size_t>(r)] || busy[static_cast<size_t>(r)]) {
        continue;
      }
      MoeServer& server = *replicas_[static_cast<size_t>(r)];
      if (!server.HasWork() && !wedge_armed[static_cast<size_t>(r)]) {
        continue;
      }
      if (wedge_armed[static_cast<size_t>(r)]) {
        server.WedgeNextIteration();
      }
      try {
        double end = 0.0;
        if (server.StepIteration(now, &end)) {
          busy[static_cast<size_t>(r)] = true;
          busy_until[static_cast<size_t>(r)] = end;
        }
      } catch (const CheckError& e) {
        // The wedged / corrupted (or internally failed) iteration
        // fail-fasted: the replica is dead, not hung, and a transport-
        // integrity CheckError means an injected bit-flip was DETECTED
        // before anything consumed it.
        const bool corrupted =
            std::string(e.what()).find("transport integrity") !=
            std::string::npos;
        wedge_armed[static_cast<size_t>(r)] = false;
        fail_pending[static_cast<size_t>(r)] = false;
        die(r, corrupted);
      }
    }

    // Breaker transitions as trace instants: poll each replica's breaker
    // state once per loop pass and record changes. Polling never mutates
    // the breaker (state() is a pure read at `now`), so telemetry cannot
    // perturb the trajectory.
    if (tel && health_on) {
      for (int r = 0; r < R; ++r) {
        const BreakerState s = health.state(r, now);
        if (s == breaker_seen[static_cast<size_t>(r)]) {
          continue;
        }
        breaker_seen[static_cast<size_t>(r)] = s;
        obs::SpanKind kind = obs::SpanKind::kBreakerClosed;
        switch (s) {
          case BreakerState::kOpen:
            kind = obs::SpanKind::kBreakerOpen;
            break;
          case BreakerState::kHalfOpen:
            kind = obs::SpanKind::kBreakerHalfOpen;
            break;
          case BreakerState::kClosed:
            kind = obs::SpanKind::kBreakerClosed;
            break;
        }
        cluster_events_.Record(kind, now, now, static_cast<uint64_t>(r), 0.0,
                               r);
      }
    }

    // E. Advance the clock to the next event; done when none remain.
    double next = std::numeric_limits<double>::infinity();
    for (int r = 0; r < R; ++r) {
      if (busy[static_cast<size_t>(r)]) {
        next = std::min(next, busy_until[static_cast<size_t>(r)]);
      }
      if (warming[static_cast<size_t>(r)]) {
        next = std::min(next, warm_until[static_cast<size_t>(r)]);
      }
    }
    if (next_arrival < arrivals.size()) {
      next = std::min(next, arrivals[next_arrival].arrival_us);
    }
    if (next_fault < options_.faults.events.size()) {
      next = std::min(next, options_.faults.events[next_fault].time_us);
    }
    if (!pending.empty()) {
      next = std::min(next, std::get<0>(*pending.begin()));
    }
    if (options_.hedge_queue_wait_us > 0.0) {
      for (const auto& [id, t] : track) {
        if (!t.done && !t.lost && !t.hedged && t.copies.size() == 1 &&
            t.dispatched_us >= 0.0) {
          next = std::min(next,
                          t.dispatched_us + options_.hedge_queue_wait_us);
        }
      }
    }
    if (!backlog.empty()) {
      // A replica died after this turn's dispatch phase: loop again at the
      // same time so C re-dispatches (or accounts) the recovered requests.
      // C always empties the backlog, so this cannot spin.
      continue;
    }
    if (next == std::numeric_limits<double>::infinity()) {
      break;
    }
    now = std::max(now, next);
  }

  // Conservation: every tracked request ended exactly one way.
  for (const auto& [id, t] : track) {
    COMET_CHECK(t.done != t.lost)
        << "request " << id << " ended " << (t.done ? "both" : "neither")
        << " completed and lost";
  }
  COMET_CHECK(pending.empty() && backlog.empty());

  // Aggregate the per-replica runs: archived incarnations first, then the
  // live (or dead-but-final) incarnation of each slot.
  std::vector<double> queue_waits, ttfts, itls, e2es;
  for (int r = 0; r < R; ++r) {
    const Archive& a = archives[static_cast<size_t>(r)];
    const RunView view = replicas_[static_cast<size_t>(r)]->View();
    report.completed.insert(report.completed.end(), a.completed.begin(),
                            a.completed.end());
    report.completed.insert(report.completed.end(), view.completed.begin(),
                            view.completed.end());
    queue_waits.insert(queue_waits.end(), a.queue_waits.begin(),
                       a.queue_waits.end());
    queue_waits.insert(queue_waits.end(), view.queue_waits.begin(),
                       view.queue_waits.end());
    ttfts.insert(ttfts.end(), a.ttfts.begin(), a.ttfts.end());
    ttfts.insert(ttfts.end(), view.ttfts.begin(), view.ttfts.end());
    itls.insert(itls.end(), a.itls.begin(), a.itls.end());
    itls.insert(itls.end(), view.itls.begin(), view.itls.end());
    e2es.insert(e2es.end(), a.e2es.begin(), a.e2es.end());
    e2es.insert(e2es.end(), view.e2es.begin(), view.e2es.end());
    report.iterations += a.iterations + view.iterations;
    report.batched_tokens += a.batched_tokens + view.batched_tokens;
    report.padding_tokens += a.padding_tokens + view.padding_tokens;
    report.promotions += a.promotions + view.promotions;
    report.retirements += a.retirements + view.retirements;
    report.replicated_rows += a.replicated_rows + view.replicated_rows;
    report.per_replica_completed.push_back(
        static_cast<int64_t>(a.completed.size() + view.completed.size()));
    report.per_replica_iterations.push_back(a.iterations + view.iterations);
  }
  report.sim_duration_us = now;
  if (now > 0.0) {
    report.throughput_tokens_per_s =
        static_cast<double>(report.batched_tokens) / (now / 1e6);
  }
  if (health_on) {
    report.breaker_opens = health.total_opens();
    report.probes = health.total_probes();
  }

  // Dispatcher metrics, set once from the report's (already-exact) totals:
  // the dispatcher is single-threaded, so there is nothing to sample
  // mid-run that the final values would not capture.
  if (tel) {
    const auto set = [](obs::Counter* c, int64_t v) {
      c->Reset();
      c->Add(static_cast<uint64_t>(v));
    };
    set(cluster_metrics_.dispatches, report.dispatched);
    set(cluster_metrics_.redispatches, report.redispatched);
    set(cluster_metrics_.retries, report.retries);
    set(cluster_metrics_.hedges, report.hedged);
    set(cluster_metrics_.hedge_wins, report.hedge_wins);
    set(cluster_metrics_.sheds, report.shed);
    set(cluster_metrics_.wasted_tokens, report.wasted_tokens);
    set(cluster_metrics_.faults_injected, static_cast<int64_t>(next_fault));
    set(cluster_metrics_.replica_failures, report.replica_failures);
    set(cluster_metrics_.replicas_recovered, report.replicas_recovered);
    set(cluster_metrics_.breaker_opens, report.breaker_opens);
    set(cluster_metrics_.breaker_probes, report.probes);
  }

  std::sort(report.completed.begin(), report.completed.end(),
            [](const RequestRecord& a, const RequestRecord& b) {
              return a.id < b.id;
            });
  // Recovery-plane annotations (not digested: retries/hedges change
  // latency, never bits).
  for (RequestRecord& rec : report.completed) {
    const Track& t = track.at(rec.id);
    rec.retries = t.attempts > 0 ? t.attempts - 1 : 0;
    rec.hedged = t.hedged;
  }
  COMET_CHECK_EQ(report.offered,
                 static_cast<int64_t>(report.completed.size()) + report.shed +
                     report.failed_in_flight + report.retries_exhausted)
      << "cluster accounting is not conservative";

  report.queue_wait_us = SummarizeLatency(queue_waits);
  report.ttft_us = SummarizeLatency(ttfts);
  report.itl_us = SummarizeLatency(itls);
  report.e2e_us = SummarizeLatency(e2es);

  uint64_t combined = Fnv1aInit();
  int64_t met = 0;
  const SloTargets& slo = options_.server.slo;
  for (const RequestRecord& rec : report.completed) {
    combined =
        Fnv1aAdd(combined, &rec.output_digest, sizeof(rec.output_digest));
    const bool ttft_ok = slo.ttft_us <= 0.0 || rec.ttft_us <= slo.ttft_us;
    const bool itl_ok = slo.itl_us <= 0.0 || rec.mean_itl_us <= slo.itl_us;
    if (ttft_ok && itl_ok) {
      ++met;
    }
  }
  report.combined_digest = combined;
  if (slo.Configured()) {
    const int64_t denom = static_cast<int64_t>(report.completed.size()) +
                          report.shed + report.failed_in_flight +
                          report.retries_exhausted;
    report.slo_violations = denom - met;
    report.slo_attainment =
        denom > 0 ? static_cast<double>(met) / static_cast<double>(denom)
                  : 1.0;
  }
  return report;
}

ClusterReport MoeCluster::Run(LoadGenerator& loadgen) {
  const std::vector<RequestSpec> arrivals = loadgen.GenerateAll();
  return Run(arrivals);
}

std::vector<obs::ReplicaTelemetry> MoeCluster::TelemetryViews() const {
  std::vector<obs::ReplicaTelemetry> views;
  views.reserve(replicas_.size() + 1);
  obs::ReplicaTelemetry cluster_view;
  cluster_view.name = "cluster";
  cluster_view.replica = -1;
  cluster_view.live = &cluster_events_;
  cluster_view.registry = &cluster_registry_;
  views.push_back(cluster_view);
  for (int r = 0; r < num_replicas(); ++r) {
    obs::ReplicaTelemetry view = replicas_[static_cast<size_t>(r)]->TelemetryView();
    view.name = "replica " + std::to_string(r);
    view.replica = r;
    view.archived = &archived_spans_[static_cast<size_t>(r)];
    views.push_back(view);
  }
  return views;
}

std::string MoeCluster::ExportChromeTrace() const {
  const std::vector<obs::ReplicaTelemetry> views = TelemetryViews();
  return obs::ToChromeTraceJson(views);
}

std::string MoeCluster::ExportPrometheusText() const {
  const std::vector<obs::ReplicaTelemetry> views = TelemetryViews();
  return obs::ToPrometheusText(views);
}

std::string MoeCluster::ExportTelemetryJsonl() const {
  const std::vector<obs::ReplicaTelemetry> views = TelemetryViews();
  return obs::ToJsonl(views);
}

}  // namespace comet
