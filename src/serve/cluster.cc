#include "serve/cluster.h"

#include <algorithm>
#include <deque>
#include <limits>

#include "util/check.h"

namespace comet {

MoeCluster::MoeCluster(ClusterOptions options, ClusterSpec replica_cluster)
    : options_(std::move(options)) {
  COMET_CHECK_GT(options_.replicas, 0);
  COMET_CHECK_LE(options_.replicas, 64) << "DispatchDecision::accepting_mask";
  COMET_CHECK_GE(options_.global_queue_tokens, 0);
  for (size_t i = 0; i < options_.faults.events.size(); ++i) {
    const FaultEvent& ev = options_.faults.events[i];
    COMET_CHECK_GE(ev.replica, 0);
    COMET_CHECK_LT(ev.replica, options_.replicas);
    COMET_CHECK_GE(ev.time_us, 0.0);
    if (i > 0) {
      COMET_CHECK_GE(ev.time_us, options_.faults.events[i - 1].time_us)
          << "fault events must be sorted by time_us";
    }
  }
  replicas_.reserve(static_cast<size_t>(options_.replicas));
  for (int r = 0; r < options_.replicas; ++r) {
    replicas_.push_back(
        std::make_unique<MoeServer>(options_.server, replica_cluster));
  }
}

MoeCluster::~MoeCluster() = default;

ClusterReport MoeCluster::Run(const std::vector<RequestSpec>& arrivals) {
  for (size_t i = 1; i < arrivals.size(); ++i) {
    COMET_CHECK_GE(arrivals[i].arrival_us, arrivals[i - 1].arrival_us)
        << "arrivals must be sorted by arrival_us";
  }

  const int R = num_replicas();
  for (auto& server : replicas_) {
    server->BeginRun();
  }
  Dispatcher dispatcher(options_.placement, R, options_.placement_seed);

  std::vector<bool> alive(static_cast<size_t>(R), true);
  std::vector<bool> accepting(static_cast<size_t>(R), true);
  std::vector<bool> busy(static_cast<size_t>(R), false);
  std::vector<bool> fail_pending(static_cast<size_t>(R), false);
  std::vector<bool> wedge_armed(static_cast<size_t>(R), false);
  std::vector<double> busy_until(static_cast<size_t>(R), 0.0);

  ClusterReport report;
  report.offered = static_cast<int64_t>(arrivals.size());
  std::deque<RequestSpec> backlog;  // recovered, awaiting re-dispatch

  double now = 0.0;
  size_t next_arrival = 0;
  size_t next_fault = 0;

  const auto loads = [&] {
    std::vector<int64_t> v(static_cast<size_t>(R), 0);
    for (int r = 0; r < R; ++r) {
      v[static_cast<size_t>(r)] = replicas_[static_cast<size_t>(r)]
                                      ->LoadTokens();
    }
    return v;
  };
  const auto global_load = [&] {
    int64_t total = 0;
    for (int r = 0; r < R; ++r) {
      if (alive[static_cast<size_t>(r)]) {
        total += replicas_[static_cast<size_t>(r)]->LoadTokens();
      }
    }
    return total;
  };
  // Replica death: drain its in-flight requests into the backlog
  // (kRedispatch) or the lost count (kCountAsViolation). Completed-request
  // records on the dead replica are kept -- they finished.
  const auto die = [&](int r) {
    alive[static_cast<size_t>(r)] = false;
    accepting[static_cast<size_t>(r)] = false;
    ++report.replica_failures;
    dispatcher.ForgetReplica(r);
    std::vector<RequestSpec> in_flight =
        replicas_[static_cast<size_t>(r)]->DrainInFlight();
    if (options_.in_flight == InFlightPolicy::kRedispatch) {
      backlog.insert(backlog.end(), in_flight.begin(), in_flight.end());
    } else {
      report.failed_in_flight += static_cast<int64_t>(in_flight.size());
    }
  };
  // One request through the placement policy. `redispatch` marks recovered
  // requests; a dispatch-level miss (no accepting replica) counts them as
  // lost rather than shed.
  const auto dispatch_one = [&](const RequestSpec& spec, bool redispatch) {
    DispatchDecision decision;
    const std::vector<int64_t> load_now = loads();
    const int pick = dispatcher.Pick(spec, load_now, accepting, &decision);
    decision.time_us = now;
    decision.redispatch = redispatch;
    if (pick < 0) {
      if (redispatch) {
        ++report.failed_in_flight;
      } else {
        ++report.shed;
      }
    } else {
      ++report.dispatched;
      if (redispatch) {
        ++report.redispatched;
      }
      replicas_[static_cast<size_t>(pick)]->Offer(spec);
    }
    if (options_.record_dispatch_log) {
      report.dispatch_log.push_back(decision);
    }
  };

  while (true) {
    // A. Fire due faults. kFail on a busy replica defers death to the end
    // of the in-flight iteration (B), but stops dispatches immediately.
    while (next_fault < options_.faults.events.size() &&
           options_.faults.events[next_fault].time_us <= now) {
      const FaultEvent& ev = options_.faults.events[next_fault];
      ++next_fault;
      const int r = ev.replica;
      if (!alive[static_cast<size_t>(r)]) {
        continue;  // already dead; the fault is moot
      }
      switch (ev.kind) {
        case FaultKind::kFail:
          accepting[static_cast<size_t>(r)] = false;
          if (busy[static_cast<size_t>(r)]) {
            fail_pending[static_cast<size_t>(r)] = true;
          } else {
            die(r);
          }
          break;
        case FaultKind::kDrain:
          if (accepting[static_cast<size_t>(r)]) {
            accepting[static_cast<size_t>(r)] = false;
            ++report.replicas_drained;
            dispatcher.ForgetReplica(r);
          }
          break;
        case FaultKind::kWedge:
          wedge_armed[static_cast<size_t>(r)] = true;
          break;
      }
    }

    // B. Retire iterations whose simulated end has been reached.
    for (int r = 0; r < R; ++r) {
      if (busy[static_cast<size_t>(r)] &&
          busy_until[static_cast<size_t>(r)] <= now) {
        busy[static_cast<size_t>(r)] = false;
        if (fail_pending[static_cast<size_t>(r)]) {
          fail_pending[static_cast<size_t>(r)] = false;
          die(r);
        }
      }
    }

    // C. Dispatch: recovered requests first (they were admitted earlier),
    // then arrivals up to now.
    while (!backlog.empty()) {
      const RequestSpec spec = backlog.front();
      backlog.pop_front();
      dispatch_one(spec, /*redispatch=*/true);
    }
    while (next_arrival < arrivals.size() &&
           arrivals[next_arrival].arrival_us <= now) {
      const RequestSpec& spec = arrivals[next_arrival];
      ++next_arrival;
      if (options_.global_queue_tokens > 0 &&
          global_load() >= options_.global_queue_tokens) {
        ++report.shed;  // global admission bound: shed outright
        if (options_.record_dispatch_log) {
          DispatchDecision d;
          d.request_id = spec.id;
          d.session = spec.session;
          d.time_us = now;
          report.dispatch_log.push_back(d);
        }
        continue;
      }
      dispatch_one(spec, /*redispatch=*/false);
    }

    // D. Start one iteration on every alive idle replica with work, in
    // replica-index order (drained replicas keep stepping until empty; a
    // wedge-armed replica is stepped so the wedge can fire).
    for (int r = 0; r < R; ++r) {
      if (!alive[static_cast<size_t>(r)] || busy[static_cast<size_t>(r)]) {
        continue;
      }
      MoeServer& server = *replicas_[static_cast<size_t>(r)];
      if (!server.HasWork() && !wedge_armed[static_cast<size_t>(r)]) {
        continue;
      }
      if (wedge_armed[static_cast<size_t>(r)]) {
        server.WedgeNextIteration();
      }
      try {
        double end = 0.0;
        if (server.StepIteration(now, &end)) {
          busy[static_cast<size_t>(r)] = true;
          busy_until[static_cast<size_t>(r)] = end;
        }
      } catch (const CheckError&) {
        // The wedged (or internally failed) iteration fail-fasted: the
        // replica is dead, not hung.
        wedge_armed[static_cast<size_t>(r)] = false;
        fail_pending[static_cast<size_t>(r)] = false;
        die(r);
      }
    }

    // E. Advance the clock to the next event; done when none remain.
    double next = std::numeric_limits<double>::infinity();
    for (int r = 0; r < R; ++r) {
      if (busy[static_cast<size_t>(r)]) {
        next = std::min(next, busy_until[static_cast<size_t>(r)]);
      }
    }
    if (next_arrival < arrivals.size()) {
      next = std::min(next, arrivals[next_arrival].arrival_us);
    }
    if (next_fault < options_.faults.events.size()) {
      next = std::min(next, options_.faults.events[next_fault].time_us);
    }
    if (!backlog.empty()) {
      // A replica died after this turn's dispatch phase: loop again at the
      // same time so C re-dispatches (or accounts) the recovered requests.
      // C always empties the backlog, so this cannot spin.
      continue;
    }
    if (next == std::numeric_limits<double>::infinity()) {
      break;
    }
    now = std::max(now, next);
  }

  // Aggregate the per-replica runs.
  std::vector<double> queue_waits, ttfts, itls, e2es;
  int64_t replica_shed = 0;
  for (int r = 0; r < R; ++r) {
    const RunView view = replicas_[static_cast<size_t>(r)]->View();
    report.completed.insert(report.completed.end(), view.completed.begin(),
                            view.completed.end());
    queue_waits.insert(queue_waits.end(), view.queue_waits.begin(),
                       view.queue_waits.end());
    ttfts.insert(ttfts.end(), view.ttfts.begin(), view.ttfts.end());
    itls.insert(itls.end(), view.itls.begin(), view.itls.end());
    e2es.insert(e2es.end(), view.e2es.begin(), view.e2es.end());
    replica_shed += view.shed;
    report.iterations += view.iterations;
    report.batched_tokens += view.batched_tokens;
    report.padding_tokens += view.padding_tokens;
    report.per_replica_completed.push_back(
        static_cast<int64_t>(view.completed.size()));
    report.per_replica_iterations.push_back(view.iterations);
  }
  report.shed += replica_shed;
  report.sim_duration_us = now;
  if (now > 0.0) {
    report.throughput_tokens_per_s =
        static_cast<double>(report.batched_tokens) / (now / 1e6);
  }

  std::sort(report.completed.begin(), report.completed.end(),
            [](const RequestRecord& a, const RequestRecord& b) {
              return a.id < b.id;
            });
  report.queue_wait_us = SummarizeLatency(queue_waits);
  report.ttft_us = SummarizeLatency(ttfts);
  report.itl_us = SummarizeLatency(itls);
  report.e2e_us = SummarizeLatency(e2es);

  uint64_t combined = Fnv1aInit();
  int64_t met = 0;
  const SloTargets& slo = options_.server.slo;
  for (const RequestRecord& rec : report.completed) {
    combined =
        Fnv1aAdd(combined, &rec.output_digest, sizeof(rec.output_digest));
    const bool ttft_ok = slo.ttft_us <= 0.0 || rec.ttft_us <= slo.ttft_us;
    const bool itl_ok = slo.itl_us <= 0.0 || rec.mean_itl_us <= slo.itl_us;
    if (ttft_ok && itl_ok) {
      ++met;
    }
  }
  report.combined_digest = combined;
  if (slo.Configured()) {
    const int64_t denom = static_cast<int64_t>(report.completed.size()) +
                          report.shed + report.failed_in_flight;
    report.slo_violations = denom - met;
    report.slo_attainment =
        denom > 0 ? static_cast<double>(met) / static_cast<double>(denom)
                  : 1.0;
  }
  return report;
}

ClusterReport MoeCluster::Run(LoadGenerator& loadgen) {
  const std::vector<RequestSpec> arrivals = loadgen.GenerateAll();
  return Run(arrivals);
}

}  // namespace comet
