#include "serve/placement.h"

#include <algorithm>
#include <vector>

#include "util/check.h"

namespace comet {

const char* PlacementPolicyName(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kRoundRobin:
      return "rr";
    case PlacementPolicy::kLeastLoaded:
      return "least-loaded";
    case PlacementPolicy::kPowerOfTwo:
      return "p2c";
    case PlacementPolicy::kSticky:
      return "sticky";
  }
  return "unknown";
}

PlacementPolicy ParsePlacementPolicy(const std::string& name) {
  if (name == "rr") return PlacementPolicy::kRoundRobin;
  if (name == "least-loaded") return PlacementPolicy::kLeastLoaded;
  if (name == "p2c") return PlacementPolicy::kPowerOfTwo;
  if (name == "sticky") return PlacementPolicy::kSticky;
  COMET_CHECK(false) << "unknown placement policy: " << name
                     << " (want rr | least-loaded | p2c | sticky)";
  return PlacementPolicy::kRoundRobin;
}

Dispatcher::Dispatcher(PlacementPolicy policy, int num_replicas, uint64_t seed)
    : policy_(policy), num_replicas_(num_replicas), rng_(seed) {
  COMET_CHECK_GT(num_replicas_, 0);
  COMET_CHECK_LE(num_replicas_, 64) << "accepting_mask is a uint64_t";
}

int Dispatcher::PickLeastLoaded(std::span<const int64_t> loads,
                                const std::vector<bool>& accepting) const {
  int best = -1;
  for (int r = 0; r < num_replicas_; ++r) {
    if (!accepting[static_cast<size_t>(r)]) {
      continue;
    }
    // Strict < keeps ties on the lowest index: deterministic.
    if (best < 0 ||
        loads[static_cast<size_t>(r)] < loads[static_cast<size_t>(best)]) {
      best = r;
    }
  }
  return best;
}

int Dispatcher::Pick(const RequestSpec& spec, std::span<const int64_t> loads,
                     const std::vector<bool>& accepting,
                     DispatchDecision* decision) {
  COMET_CHECK_EQ(static_cast<int>(loads.size()), num_replicas_);
  COMET_CHECK_EQ(static_cast<int>(accepting.size()), num_replicas_);

  DispatchDecision local;
  DispatchDecision& d = decision != nullptr ? *decision : local;
  d = DispatchDecision{};
  d.request_id = spec.id;
  d.session = spec.session;
  int num_accepting = 0;
  for (int r = 0; r < num_replicas_; ++r) {
    if (accepting[static_cast<size_t>(r)]) {
      d.accepting_mask |= uint64_t{1} << r;
      ++num_accepting;
    }
  }
  if (num_accepting == 0) {
    return -1;
  }

  int pick = -1;
  switch (policy_) {
    case PlacementPolicy::kRoundRobin: {
      // Probe at most num_replicas_ slots from the cursor; the cursor
      // advances past the pick so the next request continues the rotation.
      for (int probe = 0; probe < num_replicas_; ++probe) {
        const int r =
            static_cast<int>((rr_next_ + probe) % num_replicas_);
        if (accepting[static_cast<size_t>(r)]) {
          pick = r;
          rr_next_ = r + 1;
          break;
        }
      }
      break;
    }
    case PlacementPolicy::kLeastLoaded: {
      pick = PickLeastLoaded(loads, accepting);
      break;
    }
    case PlacementPolicy::kPowerOfTwo: {
      if (num_accepting == 1) {
        pick = PickLeastLoaded(loads, accepting);  // the only candidate
        break;
      }
      // Two distinct indices into the accepting subset, classic
      // "draw j from n-1 and shift" trick so the pair is uniform.
      std::vector<int> live;
      live.reserve(static_cast<size_t>(num_accepting));
      for (int r = 0; r < num_replicas_; ++r) {
        if (accepting[static_cast<size_t>(r)]) {
          live.push_back(r);
        }
      }
      const int n = static_cast<int>(live.size());
      int i = static_cast<int>(rng_.UniformInt(0, n - 1));
      int j = static_cast<int>(rng_.UniformInt(0, n - 2));
      if (j >= i) {
        ++j;
      }
      d.candidate_a = live[static_cast<size_t>(i)];
      d.candidate_b = live[static_cast<size_t>(j)];
      d.load_a = loads[static_cast<size_t>(d.candidate_a)];
      d.load_b = loads[static_cast<size_t>(d.candidate_b)];
      // Less loaded wins; tie goes to the lower index.
      if (d.load_a < d.load_b) {
        pick = d.candidate_a;
      } else if (d.load_b < d.load_a) {
        pick = d.candidate_b;
      } else {
        pick = std::min(d.candidate_a, d.candidate_b);
      }
      break;
    }
    case PlacementPolicy::kSticky: {
      // Re-validate the pin against the CURRENT accepting set on every
      // dispatch: a pin can go stale between a session's requests (the
      // replica died, drained, was breaker-opened, or is warming up after
      // recovery), and a recovered replica must win its sessions back
      // through re-homing, not inherit them from before the failure.
      const auto it = session_replica_.find(spec.session);
      if (it != session_replica_.end()) {
        const int pinned = it->second;
        if (pinned >= 0 && pinned < num_replicas_ &&
            accepting[static_cast<size_t>(pinned)]) {
          pick = pinned;
          d.sticky_hit = true;
          break;
        }
        // Stale pin: drop it BEFORE re-homing, so a failed re-home (throw
        // below) cannot leave the dead pin in place for the next dispatch.
        session_replica_.erase(it);
      }
      // First sight of the session, or its pin stopped accepting: home it
      // least-loaded and pin.
      pick = PickLeastLoaded(loads, accepting);
      session_replica_[spec.session] = pick;
      break;
    }
  }

  COMET_CHECK_GE(pick, 0);
  COMET_CHECK(accepting[static_cast<size_t>(pick)]);
  d.replica = pick;
  return pick;
}

void Dispatcher::ForgetReplica(int replica) {
  for (auto it = session_replica_.begin(); it != session_replica_.end();) {
    if (it->second == replica) {
      it = session_replica_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace comet
