// Serving-plane request types.
//
// A request is an autoregressive inference job against one MoE layer stack:
// `prompt_tokens` prefill tokens followed by `decode_tokens` additional
// decode steps of one token each. Everything about a request -- its arrival
// time, its lengths, and its token content (derived from `seed`) -- is
// reproducible, so a serving run is a pure function of (load-generator seed,
// server config). Times are SIMULATED microseconds throughout: the serving
// clock advances by the timing plane's per-iteration duration, never by wall
// time, which is what makes latency metrics bit-reproducible across host
// thread counts.
#pragma once

#include <cstdint>
#include <span>

namespace comet {

// An arriving request, as emitted by the load generator.
struct RequestSpec {
  int64_t id = 0;
  // Content seed: the prompt rows and the per-step decode perturbations are
  // drawn from Rng streams derived from this.
  uint64_t seed = 0;
  // Session key for affinity-aware placement (the cluster plane's sticky
  // policy keeps a session on one replica for decode/KV locality). The load
  // generator defaults it to the request id, i.e. every request its own
  // session, unless LoadGenOptions::num_sessions groups them.
  uint64_t session = 0;
  int64_t prompt_tokens = 1;
  int64_t decode_tokens = 0;
  // Simulated arrival time, us.
  double arrival_us = 0.0;

  // Total MoE-layer tokens this request will occupy across its lifetime:
  // every prompt token once (prefill, possibly chunked) plus one token per
  // decode step.
  int64_t TotalTokens() const { return prompt_tokens + decode_tokens; }
};

// Completed-request accounting, all in simulated us.
//
// Token semantics: the iteration that processes the LAST prompt chunk also
// yields the first generated token (its output row for the final prompt
// position), so `ttft_us` is that iteration's completion time minus arrival.
// Each decode step yields one further token; `itl` percentiles are computed
// over the gaps between consecutive token-completion events of a request.
struct RequestRecord {
  int64_t id = 0;
  int64_t prompt_tokens = 0;
  int64_t decode_tokens = 0;
  double arrival_us = 0.0;
  // Arrival -> first time any token of the request entered a batch.
  double queue_wait_us = 0.0;
  // Arrival -> first generated token.
  double ttft_us = 0.0;
  // Arrival -> last token.
  double e2e_us = 0.0;
  // Mean inter-token latency over the request's decode steps (0 when the
  // request had no decode steps).
  double mean_itl_us = 0.0;
  // FNV-1a over the f32 bit patterns of every output row the request
  // produced, in token order. Two runs served the same request identically
  // iff the digests match bit-for-bit.
  uint64_t output_digest = 0;
  // Recovery-plane annotations, stamped by the cluster after aggregation
  // (zero in single-server runs). NOT part of the combined digest: retries
  // and hedging change latency, never bits.
  int32_t retries = 0;   // re-dispatch attempts beyond the first
  bool hedged = false;   // a second copy was speculatively dispatched
};

// FNV-1a, the digest the serving plane uses to pin bit-identical outputs.
inline uint64_t Fnv1aInit() { return 0xcbf29ce484222325ULL; }

inline uint64_t Fnv1aAdd(uint64_t h, const void* bytes, size_t n) {
  const auto* p = static_cast<const unsigned char*>(bytes);
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<uint64_t>(p[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline uint64_t Fnv1aAddFloats(uint64_t h, std::span<const float> row) {
  return Fnv1aAdd(h, row.data(), row.size() * sizeof(float));
}

}  // namespace comet
