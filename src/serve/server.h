// The MoE serving runtime: queue -> continuous batcher -> CometExecutor,
// on a simulated clock, with per-request latency and SLO accounting.
//
// Dataflow per iteration:
//  1. arrivals with arrival_us <= now enter the bounded AdmissionQueue
//     (full queue => the shed policy fires);
//  2. the queue drains into the ContinuousBatcher while it has room
//     (BatcherOptions::max_active is the backpressure that lets the queue
//     fill under overload);
//  3. the batcher packs up to token_budget tokens (decode steps first, then
//     chunked prefill, FIFO within each class);
//  4. the packed tokens become one MoeWorkload -- rows gathered from the
//     per-request prompt tensors / decode feedback rows, padded to a
//     multiple of EP, routed content-based through a softmax top-k gate --
//     and run through CometExecutor::RunBatch (functional plane: real
//     numerics at compute_dtype across the EP ranks; timing plane: the
//     simulated iteration duration);
//  5. the clock advances by host_overhead_us + the simulated duration;
//     every packed request digests its output rows, the last row feeds the
//     request's next decode step, and finished requests are retired with
//     queue-wait / TTFT / ITL / end-to-end times.
//
// Determinism: arrivals, packing and routing are pure functions of seeds
// and config; the executor's outputs are bit-identical at any thread count
// and the timing plane is simulated -- so the SAME seed + config produce
// bit-identical per-request output digests AND identical latency
// percentiles whether the host runs 1 thread or 8 (serve_test pins this
// across EP {1,4} x dtype {f32,bf16}).
//
// Allocation: the executor's PrepareServing workspaces plus run-level
// reservations (a FixedPool of LiveRequests, a persistent MoeWorkload and
// LayerExecution, ring-buffered admission, in-place Pack/Complete) make the
// steady-state StepIteration perform zero heap allocations once warm --
// alloc_test pins this with an interposed operator-new counter (see
// docs/ARCHITECTURE.md, "The allocation plane").
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/comet_executor.h"
#include "moe/router.h"
#include "obs/exporters.h"
#include "obs/telemetry.h"
#include "serve/adaptation.h"
#include "serve/admission_queue.h"
#include "serve/batcher.h"
#include "serve/loadgen.h"
#include "serve/request.h"
#include "util/stats.h"

namespace comet {

// Where per-iteration routing decisions come from.
enum class ServeRoutingMode {
  // Content-based softmax top-k gate over the real token rows (default).
  kGate,
  // Seeded load-controlled SyntheticRouter (Rng::LoadVectorWithStd at
  // ServeOptions::synthetic_load_std): benches dial in the paper's Figure 14
  // skew regimes -- and, with drift_period_us, a hot spot that walks across
  // experts -- while the data plane still executes real numerics on the real
  // batch rows. Deterministic: one seeded stream per run, with the drift
  // shift applied AFTER sampling so rng consumption is phase-independent.
  kSynthetic,
};

// Latency SLO targets, simulated us; 0 disables that clause. A completed
// request meets the SLO iff ttft_us <= slo.ttft_us (when set) and its mean
// inter-token latency <= slo.itl_us (when set). Shed requests always count
// as violations -- shedding is a latency failure the operator chose, not a
// free pass.
struct SloTargets {
  double ttft_us = 0.0;
  double itl_us = 0.0;

  bool Configured() const { return ttft_us > 0.0 || itl_us > 0.0; }
};

struct ServeOptions {
  ModelConfig model;
  ParallelConfig parallel;
  // Weights / gate seed (independent of the load generator's seed).
  uint64_t seed = 1;
  // Storage/compute dtype of the serving data plane (workload tensors and
  // CometOptions::compute_dtype).
  DType dtype = DType::kF32;
  // Worker threads for the executor (0 = global default, 1 = serial).
  int num_threads = 0;
  // Fail-fast bound for a wedged rank (CometOptions::signal_wait_timeout_ms):
  // serving default is 10 s, not the executor's 60 s. Must be > 0 (validated
  // at construction -- a non-positive bound would make every signal wait
  // fail instantly or hang forever).
  int64_t signal_wait_timeout_ms = 10'000;
  // Per-row checksums on every symmetric-heap transfer of the data plane
  // (CometOptions::verify_transport): a corrupted payload throws CheckError
  // naming buffer/rank/row at its first consumer instead of being served.
  // ON by default in serving -- production never serves silent corruption;
  // benches that want the last few percent can turn it off.
  bool verify_transport = true;
  // Per-iteration token capacity of the batcher.
  int64_t token_budget = 64;
  // Max requests live in the batcher (0 = unbounded; see BatcherOptions).
  int64_t max_active = 32;
  // Bounded admission queue.
  int64_t queue_capacity = 256;
  AdmissionPolicy queue_policy = AdmissionPolicy::kShedNewest;
  // Host-side cost added to every iteration on the simulated clock (kernel
  // launches amortized by COMET's fusion are priced inside the executor;
  // this is the serving loop's own scheduling overhead).
  double host_overhead_us = 20.0;
  // Decomposition granularity of the serving executor (CometOptions::tile_m):
  // rows per fused-pipeline chunk. Finer granularity makes per-rank time
  // track per-rank ROWS (more chunks, more compute/comm overlap, more
  // per-chunk overhead) -- the regime where load balancing moves the tail;
  // the 128 default matches the executor and keeps historical runs
  // bit-identical. Served bits never depend on this (tiles partition the
  // output; every element is a full-k accumulation either way). Must be > 0.
  int64_t granularity = 128;
  SloTargets slo;
  // Routing source (see ServeRoutingMode). The synthetic knobs below are
  // only meaningful -- and only accepted -- in kSynthetic mode.
  ServeRoutingMode routing = ServeRoutingMode::kGate;
  // Target per-expert load-fraction std of the synthetic router (Figure 14;
  // 0 = uniform in expectation). Requires routing == kSynthetic.
  double synthetic_load_std = 0.0;
  // When > 0 (kSynthetic only), the synthetic hot spot rotates one expert
  // every drift_period_us of simulated time -- the drifting-skew regime the
  // adaptation loop must chase.
  double drift_period_us = 0.0;
  // Online adaptation: hot-expert replication and live re-tuning (see
  // serve/adaptation.h). Disabled by default; disabled serves byte-identical
  // bits to a server without the adaptation plane.
  AdaptationOptions adaptation;
  // Telemetry plane (see obs/telemetry.h). OFF by default; on or off, the
  // served bits are byte-identical -- instrumentation only reads the
  // serving state (obs_test pins digest equality ON vs OFF).
  obs::TelemetryOptions telemetry;
};

struct ServeReport {
  // Completed requests, in request-id order.
  std::vector<RequestRecord> completed;
  int64_t offered = 0;
  int64_t shed = 0;
  int64_t iterations = 0;
  // Tokens actually batched (excludes EP padding) / padding rows added.
  int64_t batched_tokens = 0;
  int64_t padding_tokens = 0;
  // Simulated end-to-end duration (last iteration completion).
  double sim_duration_us = 0.0;
  // batched_tokens per simulated second.
  double throughput_tokens_per_s = 0.0;

  // Nearest-rank percentile summaries over completed requests (simulated
  // us): deterministic for a deterministic run.
  LatencySummary queue_wait_us;
  LatencySummary ttft_us;
  LatencySummary itl_us;  // over every inter-token gap of every request
  LatencySummary e2e_us;

  // SLO accounting: met / (completed + shed); 1.0 when no SLO configured.
  double slo_attainment = 1.0;
  int64_t slo_violations = 0;

  // FNV-1a over per-request output digests in id order: one value that
  // changes if any request's output changed anywhere.
  uint64_t combined_digest = 0;

  // Adaptation plane: replicas promoted/retired this run, and total
  // (token, expert) rows served from replica slices. All zero when
  // adaptation is disabled.
  int64_t promotions = 0;
  int64_t retirements = 0;
  int64_t replicated_rows = 0;
};

// Read-only view of the accumulated state of the current run, for the
// cluster dispatcher's aggregation (the single-server Serve wraps the same
// state into a ServeReport via BuildReport).
struct RunView {
  std::span<const RequestRecord> completed;  // retirement order
  std::span<const double> queue_waits;
  std::span<const double> ttfts;
  std::span<const double> itls;  // every inter-token gap of every request
  std::span<const double> e2es;
  int64_t offered = 0;
  int64_t shed = 0;
  int64_t iterations = 0;
  int64_t batched_tokens = 0;
  int64_t padding_tokens = 0;
  int64_t promotions = 0;
  int64_t retirements = 0;
  int64_t replicated_rows = 0;
};

class MoeServer {
 public:
  MoeServer(ServeOptions options, ClusterSpec cluster);
  ~MoeServer();  // out-of-line: RunState is incomplete here

  // Serves `arrivals` (must be sorted by arrival_us, as LoadGenerator
  // emits them) to completion and reports. Reusable: each call is an
  // independent serving run over the same weights. Implemented on the
  // dispatcher hooks below: BeginRun + {Offer, StepIteration} + BuildReport.
  ServeReport Serve(const std::vector<RequestSpec>& arrivals);
  ServeReport Serve(LoadGenerator& loadgen);

  // ---- dispatcher hooks (cluster plane) ------------------------------------
  // MoeCluster drives N replicas through these on one global simulated
  // clock; the single-server Serve loop drives exactly the same hooks, so
  // a 1-replica cluster is the single-server plane, bit for bit.

  // Optional run-level bounds for BeginRun. Every field is a reservation
  // hint: zero means "unknown" (the run still works, the corresponding
  // containers just grow amortized instead of never reallocating). With all
  // bounds covering the offered load, the steady-state StepIteration --
  // admission, packing, execution, harvesting AND retirement -- performs
  // zero heap allocations once warm.
  struct RunBounds {
    int64_t expected_requests = 0;  // >= requests offered this run
    int64_t expected_tokens = 0;    // >= sum of their TotalTokens()
    int64_t max_prompt_tokens = 0;  // >= longest prompt offered
    int64_t max_decode_tokens = 0;  // >= longest decode offered
  };

  // Resets all per-run state (queue, batcher, live requests, accounting),
  // reserving per-run containers at `bounds` (the iteration workspaces are
  // bounded by token_budget/max_active and reserved regardless). The
  // single-server Serve derives exact bounds from its arrival vector; the
  // cluster plane calls this with defaults.
  void BeginRun(RunBounds bounds);
  void BeginRun() { BeginRun(RunBounds()); }
  // Offers one request to the bounded admission queue. Counts offered and
  // (per the queue's shed policy) shed. Requires BeginRun.
  AdmissionQueue::Admit Offer(const RequestSpec& spec);
  // True when the replica could pack a non-empty iteration (queued or live
  // in-flight work).
  bool HasWork() const;
  // Remaining admitted-but-unexecuted tokens (admission queue + batcher):
  // the load signal placement policies balance on.
  int64_t LoadTokens() const;
  // Drains the queue into the batcher, packs one iteration starting at
  // simulated time `now`, executes it (real numerics + simulated duration),
  // harvests outputs and retires finished requests. Returns false (and
  // leaves *end_us untouched) when there is nothing to pack. A wedged rank
  // (WedgeNextIteration) or a dead producer surfaces as CheckError after
  // ServeOptions::signal_wait_timeout_ms instead of hanging.
  bool StepIteration(double now, double* end_us);
  // Fault injection: the next StepIteration parks in the symmetric heap's
  // WaitUntilSignalGe fail-fast path on a signal no producer will ever
  // raise, so it throws CheckError after signal_wait_timeout_ms -- a wedged
  // rank, observed exactly as production would observe it.
  void WedgeNextIteration();
  // Fault injection: the next StepIteration runs with the symmetric heap's
  // link-corruption injector armed at rate 1 (and checksums forced on even
  // if verify_transport is off), so the iteration throws CheckError naming
  // the corrupted buffer/rank/row -- corrupted transport is always DETECTED,
  // never silently served. One-shot: the injector disarms afterwards.
  void CorruptNextIteration();

  // Outcome of CancelRequest: whether the request was found on this replica,
  // how many of its tokens had already been executed here (wasted work), and
  // whether it had already completed (record discarded -- the cluster
  // decided another copy won).
  struct CancelResult {
    bool found = false;
    int64_t executed_tokens = 0;
    bool was_completed = false;
  };
  // Withdraws request `id` from this replica, wherever it is: still queued,
  // live in the batcher (possibly mid-prefill/decode), or completed but not
  // yet observed by the cluster (its record and latency samples are
  // discarded). Hedged-dispatch loser cancellation. Safe no-op (found ==
  // false) when the replica never saw the request.
  CancelResult CancelRequest(int64_t id);
  // True when request `id` has entered at least one batch here (or already
  // completed). The cluster's hedging uses this: a request that started
  // executing is past queue-wait, so hedging it buys nothing.
  bool RequestStarted(int64_t id) const;
  // Removes and returns every in-flight request (batcher live requests in
  // admission order, then queued requests in FIFO order) -- the cluster
  // calls this on replica failure to re-dispatch or account them. Specs
  // keep their original arrival_us. Completed-request records stay.
  std::vector<RequestSpec> DrainInFlight();
  // Accumulated state of the current run.
  RunView View() const;
  // Wraps the current run state into a report; `sim_duration_us` is the
  // run's end time on the simulated clock.
  ServeReport BuildReport(double sim_duration_us) const;

  const ServeOptions& options() const { return options_; }
  const ClusterSpec& cluster() const { return cluster_; }
  // Executor diagnostics (e.g. batch_profile_entries after a run).
  const CometExecutor& executor() const { return executor_; }

  // ---- telemetry plane (obs/) ----------------------------------------------
  // The per-replica telemetry bundle: registry + span ring, reset by
  // BeginRun. Recording only happens when options().telemetry.enabled.
  obs::Telemetry& telemetry() { return telemetry_; }
  const obs::Telemetry& telemetry() const { return telemetry_; }
  // View over this server's telemetry for the exporters (one replica
  // process; the cluster plane builds its own multi-replica list).
  obs::ReplicaTelemetry TelemetryView() const;
  // Renders this server's telemetry (see obs/exporters.h for formats).
  std::string ExportChromeTrace() const;
  std::string ExportPrometheusText() const;
  std::string ExportTelemetryJsonl() const;

 private:
  struct LiveRequest;
  struct RunState;

  // Rebuilds `run`'s persistent MoeWorkload in place for one packed
  // iteration (gather -> route -> adaptation step -> route plan ->
  // per-group inputs), filling `run.rows` with the per-entry global row
  // offsets (entry e's tokens are rows [rows[e], rows[e] +
  // entries[e].num_tokens)). `now` is the iteration's simulated start time
  // (the synthetic router's drift phase). With adaptation on, this is where
  // the loop closes: the routing's expert loads feed the HotExpertTracker
  // and its promote/retire decisions are applied to the executor before the
  // plan is rebuilt with the current replica set. Allocation-free once the
  // run's workspaces are warm EXCEPT on change iterations (a promote/retire
  // copies weights and flushes cached profiles).
  void BuildBatchWorkloadInto(const BatchPlan& plan,
                              const std::vector<LiveRequest*>& live,
                              double now, RunState& run, int64_t* padding);

  // Publishes one iteration's metrics and spans ([now, end], `packed`
  // non-padding tokens). Called at the end of StepIteration, only when
  // telemetry is enabled; allocation-free.
  void RecordIterationTelemetry(RunState& run, double now, double end,
                                int64_t packed, int64_t padding);

  ServeOptions options_;
  ClusterSpec cluster_;
  std::shared_ptr<const ExpertWeights> weights_;
  std::shared_ptr<const ShardedExpertWeights> sharded_weights_;
  GateNetwork gate_;
  CometExecutor executor_;
  obs::Telemetry telemetry_;
  std::unique_ptr<RunState> run_;
};

}  // namespace comet
