// Shared machinery for the four baseline MoE systems (paper §5.1):
// Megatron-Cutlass, Megatron-TE, FasterMoE and Tutel. All of them launch
// separate kernels per operator on CUDA streams; they differ in GEMM
// implementation, collective algorithm and pipelining strategy.
#pragma once

#include "exec/execution.h"
#include "exec/op_costs.h"

namespace comet {

// Number of auxiliary host-dispatched kernels every kernel-per-op framework
// issues around the MoE macro ops: top-k argsort, expert histogram, cumsum,
// gather/scatter index builds, probability renormalization, capacity masks.
// Each costs one launch of pure host time. COMET runs this bookkeeping
// inside its fused kernels, which is a large part of its small-M advantage
// (paper §5.3: "the scheduling time on the host side predominates the
// overall duration when M is small").
inline constexpr double kAuxRoutingKernels = 8.0;

// Per-rank operator durations every baseline composes from. All collective
// times are global makespans (a collective completes when the slowest rank
// does), GEMM/local times are per-rank.
struct BaselineQuantities {
  double gate_us = 0.0;
  double permute_us = 0.0;    // local token reordering before dispatch
  double unpermute_us = 0.0;  // local un-reordering + top-k combine
  double a2a_dispatch_us = 0.0;
  double a2a_return_us = 0.0;
  double tp_reduce_scatter_us = 0.0;
  double gemm0_us = 0.0;
  double gemm1_us = 0.0;
  double activation_us = 0.0;
  // Per-local-expert GEMM kernel times (for systems like FastMoE that launch
  // one kernel per expert instead of a grouped GEMM).
  std::vector<double> gemm0_per_expert_us;
  std::vector<double> gemm1_per_expert_us;
};

// Computes the quantities for `rank`. `gemm_efficiency` lets Megatron-TE use
// its slightly different kernel selection; `chunk_fraction` (0 < f <= 1)
// scales the token rows per kernel for pipelined baselines (GEMM efficiency
// degrades on the smaller chunks -- this is the t1 + t2 > t effect of
// Figure 1(b)).
BaselineQuantities ComputeQuantities(const MoeWorkload& workload,
                                     const OpCostModel& costs, int rank,
                                     double gemm_efficiency = 0.85,
                                     double chunk_fraction = 1.0);

// Finalizes a LayerExecution from per-rank durations/timelines: picks the
// slowest rank as critical.
void FinalizeFromRanks(std::vector<double> per_rank_us,
                       std::vector<Timeline> per_rank_timelines,
                       LayerExecution& out);

// Canonical-order functional execution used by all baselines (they share
// numerics; only scheduling differs). Produces one output per EP group,
// bit-identical to ShardedReferenceMoeLayer.
std::vector<Tensor> CanonicalFunctionalMoe(const MoeWorkload& workload);

}  // namespace comet
