#include "baselines/tutel.h"

#include <limits>

#include "sim/stream_sim.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace comet {

double TutelExecutor::SimulateRank(const MoeWorkload& workload,
                                   const OpCostModel& costs, int rank,
                                   int degree, Timeline* timeline) const {
  const BaselineQuantities q =
      ComputeQuantities(workload, costs, rank, 0.85, 1.0 / degree);
  const double host_sched_us =
      kPerExpertTopkHostUs *
      static_cast<double>(workload.placement.ExpertsPerGroup()) *
      static_cast<double>(workload.model().topk);

  StreamSim sim(costs.LaunchUs());
  const int comp = sim.AddStream("compute");
  const int comm = sim.AddStream("comm");

  sim.Launch(comp, "gate", OpCategory::kGating, q.gate_us);
  sim.HostWork("routing-bookkeeping", kAuxRoutingKernels * costs.LaunchUs());

  // Phase-major, chunk-minor issue so chunk c+1's all-to-all overlaps chunk
  // c's expert computation.
  std::vector<KernelId> encode(static_cast<size_t>(degree));
  std::vector<KernelId> a2a(static_cast<size_t>(degree));
  std::vector<KernelId> gemm1(static_cast<size_t>(degree));
  std::vector<KernelId> ret(static_cast<size_t>(degree));
  for (int c = 0; c < degree; ++c) {
    sim.HostWork("tutel-sched", host_sched_us);
    encode[static_cast<size_t>(c)] =
        sim.Launch(comp, "fast-encode", OpCategory::kLayer0Comp,
                   q.permute_us * kEncodeFactor);
  }
  for (int c = 0; c < degree; ++c) {
    a2a[static_cast<size_t>(c)] = sim.Launch(
        comm, "2d-a2a-dispatch", OpCategory::kLayer0Comm,
        q.a2a_dispatch_us * kHierarchicalCommFactor,
        {encode[static_cast<size_t>(c)]});
  }
  for (int c = 0; c < degree; ++c) {
    const KernelId gemm0 = sim.Launch(comp, "gemm0", OpCategory::kLayer0Comp,
                                      q.gemm0_us, {a2a[static_cast<size_t>(c)]});
    const KernelId act = sim.Launch(comp, "activation", OpCategory::kActivation,
                                    q.activation_us, {gemm0});
    gemm1[static_cast<size_t>(c)] =
        sim.Launch(comp, "gemm1", OpCategory::kLayer1Comp, q.gemm1_us, {act});
  }
  for (int c = 0; c < degree; ++c) {
    ret[static_cast<size_t>(c)] = sim.Launch(
        comm, "2d-a2a-return", OpCategory::kLayer1Comm,
        q.a2a_return_us * kHierarchicalCommFactor,
        {gemm1[static_cast<size_t>(c)]});
    if (q.tp_reduce_scatter_us > 0.0) {
      ret[static_cast<size_t>(c)] = sim.Launch(
          comm, "tp-reduce-scatter", OpCategory::kLayer1Comm,
          q.tp_reduce_scatter_us, {ret[static_cast<size_t>(c)]});
    }
  }
  for (int c = 0; c < degree; ++c) {
    sim.Launch(comp, "fast-decode", OpCategory::kLayer1Comp,
               q.unpermute_us * kEncodeFactor, {ret[static_cast<size_t>(c)]});
  }
  if (timeline != nullptr) {
    *timeline = sim.timeline();
  }
  return sim.Finish();
}

LayerExecution TutelExecutor::Run(const MoeWorkload& workload,
                                  const ClusterSpec& cluster, ExecMode mode) {
  COMET_CHECK_EQ(cluster.world_size, workload.world());
  const OpCostModel costs(cluster);
  LayerExecution out;
  out.executor = name();

  // Heuristic search: pick the pipeline degree minimizing rank 0's latency
  // (Tutel tunes on a sampled rank, not the global critical path -- part of
  // why its choice can be sub-optimal).
  double best = std::numeric_limits<double>::infinity();
  int best_degree = kDegrees[0];
  for (int d : kDegrees) {
    const double t = SimulateRank(workload, costs, 0, d, nullptr);
    if (t < best) {
      best = t;
      best_degree = d;
    }
  }
  last_degree_ = best_degree;

  const int world = workload.world();
  std::vector<double> per_rank(static_cast<size_t>(world), 0.0);
  std::vector<Timeline> timelines(static_cast<size_t>(world));
  // Per-rank simulations are independent; fan them out.
  ParallelFor(0, world, 1, [&](int64_t r) {
    per_rank[static_cast<size_t>(r)] =
        SimulateRank(workload, costs, static_cast<int>(r), best_degree,
                     &timelines[static_cast<size_t>(r)]);
  });
  FinalizeFromRanks(std::move(per_rank), std::move(timelines), out);

  if (mode == ExecMode::kFunctional) {
    out.outputs = CanonicalFunctionalMoe(workload);
  }
  return out;
}

}  // namespace comet
