// Megatron-LM MoE baselines (paper §5.1 (a) and (b)).
//
// Both run the MoE layer as a strict sequence of kernels on one stream with
// no communication-computation overlap:
//   gate -> permute -> all-to-all -> GroupGEMM -> activation -> GroupGEMM
//        -> all-to-all -> [TP reduce-scatter] -> unpermute + combine
//
// Megatron-Cutlass implements the experts with CUTLASS grouped GEMM;
// Megatron-TE uses Transformer Engine, which selects slightly less efficient
// grouped kernels and pays extra host-side API overhead per call (the paper
// observes TE is a touch slower for exactly these reasons).
#pragma once

#include "baselines/common.h"

namespace comet {

struct MegatronFlavor {
  std::string name;
  double gemm_efficiency = 0.85;
  double host_api_overhead_us = 0.0;  // extra host time per operator call
};

class MegatronExecutor : public MoeLayerExecutor {
 public:
  explicit MegatronExecutor(MegatronFlavor flavor);

  std::string name() const override { return flavor_.name; }
  bool Supports(const ParallelConfig&) const override { return true; }
  LayerExecution Run(const MoeWorkload& workload, const ClusterSpec& cluster,
                     ExecMode mode) override;

 private:
  MegatronFlavor flavor_;
};

// Factory helpers matching the paper's names.
MegatronExecutor MakeMegatronCutlass();
MegatronExecutor MakeMegatronTe();

}  // namespace comet
