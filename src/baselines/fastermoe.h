// FasterMoE baseline (paper §5.1 (c); He et al., PPoPP'22).
//
// FasterMoE pipelines expert computation with all-to-all at a fixed pipeline
// degree of 2: tokens are split into two chunks, chunk i+1's communication
// overlaps chunk i's computation across a comm stream and a compute stream.
// Its "smart scheduling" replaces NCCL all-to-all with custom scatter/gather
// operators -- slightly faster on the wire, but the extra local indexing
// work extends computation (paper Figure 11 discussion). It supports expert
// parallelism only (EP = W); the paper notes it cannot run TP > 1.
//
// Kernel-per-op scheduling means the host launches ~7 kernels per chunk, and
// per-expert management work grows with E -- which is why the paper sees its
// advantage vanish on Qwen2's 64 small experts.
#pragma once

#include "baselines/common.h"

namespace comet {

class FasterMoeExecutor : public MoeLayerExecutor {
 public:
  FasterMoeExecutor() = default;

  std::string name() const override { return "FasterMoE"; }
  bool Supports(const ParallelConfig& parallel) const override {
    return parallel.tp == 1;
  }
  LayerExecution Run(const MoeWorkload& workload, const ClusterSpec& cluster,
                     ExecMode mode) override;

 private:
  static constexpr int kPipelineDegree = 2;
  // Wire-efficiency of the custom scatter/gather vs. NCCL all-to-all.
  static constexpr double kSmartCommFactor = 0.9;
  // Extra local indexing work multiplier on permute/unpermute.
  static constexpr double kIndexingFactor = 1.35;
  // Host-side per-expert management cost per chunk, us.
  static constexpr double kPerExpertHostUs = 0.3;
};

}  // namespace comet
