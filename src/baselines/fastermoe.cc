#include "baselines/fastermoe.h"

#include "sim/stream_sim.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace comet {

LayerExecution FasterMoeExecutor::Run(const MoeWorkload& workload,
                                      const ClusterSpec& cluster,
                                      ExecMode mode) {
  COMET_CHECK_EQ(cluster.world_size, workload.world());
  COMET_CHECK(Supports(workload.placement.parallel()))
      << "FasterMoE supports expert parallelism only";
  const OpCostModel costs(cluster);
  LayerExecution out;
  out.executor = name();

  const int world = workload.world();
  const double chunk_fraction = 1.0 / kPipelineDegree;
  std::vector<double> per_rank(static_cast<size_t>(world), 0.0);
  std::vector<Timeline> timelines(static_cast<size_t>(world));

  // Per-rank StreamSim programs are independent; fan them out.
  ParallelFor(0, world, 1, [&](int64_t ri) {
    const int r = static_cast<int>(ri);
    const BaselineQuantities q =
        ComputeQuantities(workload, costs, r, 0.85, chunk_fraction);
    const double experts_host_us =
        kPerExpertHostUs *
        static_cast<double>(workload.placement.ExpertsPerGroup());

    StreamSim sim(costs.LaunchUs());
    const int comp = sim.AddStream("compute");
    const int comm = sim.AddStream("comm");

    sim.Launch(comp, "gate", OpCategory::kGating, q.gate_us);
    sim.HostWork("routing-bookkeeping",
                 kAuxRoutingKernels * costs.LaunchUs());

    // Phase-major, chunk-minor issue: chunk c+1's all-to-all overlaps chunk
    // c's expert computation (pipeline degree 2).
    std::vector<KernelId> scatter(kPipelineDegree);
    std::vector<KernelId> a2a(kPipelineDegree);
    std::vector<KernelId> gemm1(kPipelineDegree);
    std::vector<KernelId> ret(kPipelineDegree);
    for (int c = 0; c < kPipelineDegree; ++c) {
      sim.HostWork("expert-mgmt", experts_host_us);
      scatter[static_cast<size_t>(c)] =
          sim.Launch(comp, "smart-scatter", OpCategory::kLayer0Comp,
                     q.permute_us * kIndexingFactor);
    }
    for (int c = 0; c < kPipelineDegree; ++c) {
      a2a[static_cast<size_t>(c)] = sim.Launch(
          comm, "a2a-dispatch", OpCategory::kLayer0Comm,
          q.a2a_dispatch_us * kSmartCommFactor,
          {scatter[static_cast<size_t>(c)]});
    }
    for (int c = 0; c < kPipelineDegree; ++c) {
      // FastMoE's expert function launches one GEMM kernel per local expert
      // (no grouped GEMM); kernel invocation time dominates when experts are
      // small and numerous -- the paper's Qwen2 observation.
      KernelId last = a2a[static_cast<size_t>(c)];
      for (double per_expert : q.gemm0_per_expert_us) {
        last = sim.Launch(comp, "gemm0-expert", OpCategory::kLayer0Comp,
                          per_expert, {last});
      }
      last = sim.Launch(comp, "activation", OpCategory::kActivation,
                        q.activation_us, {last});
      for (double per_expert : q.gemm1_per_expert_us) {
        last = sim.Launch(comp, "gemm1-expert", OpCategory::kLayer1Comp,
                          per_expert, {last});
      }
      gemm1[static_cast<size_t>(c)] = last;
    }
    // The combine path is synchronized: chunking is by (token, expert) row,
    // so one token's topk contributions can land in different chunks and the
    // global top-k reduction cannot start until every chunk's experts have
    // finished. The return all-to-all therefore does not pipeline.
    for (int c = 0; c < kPipelineDegree; ++c) {
      ret[static_cast<size_t>(c)] = sim.Launch(
          comm, "a2a-return", OpCategory::kLayer1Comm,
          q.a2a_return_us * kSmartCommFactor,
          {gemm1[static_cast<size_t>(kPipelineDegree - 1)]});
    }
    for (int c = 0; c < kPipelineDegree; ++c) {
      sim.Launch(comp, "smart-gather", OpCategory::kLayer1Comp,
                 q.unpermute_us * kIndexingFactor,
                 {ret[static_cast<size_t>(c)]});
    }
    per_rank[static_cast<size_t>(r)] = sim.Finish();
    timelines[static_cast<size_t>(r)] = sim.timeline();
  });
  FinalizeFromRanks(std::move(per_rank), std::move(timelines), out);

  if (mode == ExecMode::kFunctional) {
    out.outputs = CanonicalFunctionalMoe(workload);
  }
  return out;
}

}  // namespace comet
