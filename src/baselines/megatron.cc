#include "baselines/megatron.h"

#include "sim/stream_sim.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace comet {

MegatronExecutor::MegatronExecutor(MegatronFlavor flavor)
    : flavor_(std::move(flavor)) {
  COMET_CHECK(!flavor_.name.empty());
}

LayerExecution MegatronExecutor::Run(const MoeWorkload& workload,
                                     const ClusterSpec& cluster,
                                     ExecMode mode) {
  COMET_CHECK_EQ(cluster.world_size, workload.world());
  const OpCostModel costs(cluster);
  LayerExecution out;
  out.executor = name();

  const int world = workload.world();
  std::vector<double> per_rank(static_cast<size_t>(world), 0.0);
  std::vector<Timeline> timelines(static_cast<size_t>(world));

  // Per-rank StreamSim programs are independent; fan them out.
  ParallelFor(0, world, 1, [&](int64_t ri) {
    const int r = static_cast<int>(ri);
    const BaselineQuantities q =
        ComputeQuantities(workload, costs, r, flavor_.gemm_efficiency);

    StreamSim sim(costs.LaunchUs());
    const int stream = sim.AddStream("compute");
    auto launch = [&](const char* label, OpCategory cat, double dur) {
      if (flavor_.host_api_overhead_us > 0.0) {
        sim.HostWork(std::string("api:") + label, flavor_.host_api_overhead_us);
      }
      return sim.Launch(stream, label, cat, dur);
    };

    launch("gate", OpCategory::kGating, q.gate_us);
    sim.HostWork("routing-bookkeeping",
                 kAuxRoutingKernels * costs.LaunchUs());
    launch("permute", OpCategory::kLayer0Comp, q.permute_us);
    launch("a2a-dispatch", OpCategory::kLayer0Comm, q.a2a_dispatch_us);
    launch("gemm0", OpCategory::kLayer0Comp, q.gemm0_us);
    launch("activation", OpCategory::kActivation, q.activation_us);
    launch("gemm1", OpCategory::kLayer1Comp, q.gemm1_us);
    launch("a2a-return", OpCategory::kLayer1Comm, q.a2a_return_us);
    if (q.tp_reduce_scatter_us > 0.0) {
      launch("tp-reduce-scatter", OpCategory::kLayer1Comm,
             q.tp_reduce_scatter_us);
    }
    launch("unpermute-combine", OpCategory::kLayer1Comp, q.unpermute_us);

    per_rank[static_cast<size_t>(r)] = sim.Finish();
    timelines[static_cast<size_t>(r)] = sim.timeline();
  });
  FinalizeFromRanks(std::move(per_rank), std::move(timelines), out);

  if (mode == ExecMode::kFunctional) {
    out.outputs = CanonicalFunctionalMoe(workload);
  }
  return out;
}

MegatronExecutor MakeMegatronCutlass() {
  return MegatronExecutor(MegatronFlavor{"Megatron-Cutlass", 0.85, 0.0});
}

MegatronExecutor MakeMegatronTe() {
  return MegatronExecutor(MegatronFlavor{"Megatron-TE", 0.80, 14.0});
}

}  // namespace comet
