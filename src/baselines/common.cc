#include "baselines/common.h"

#include <algorithm>
#include <cmath>

#include "comm/collectives.h"
#include "moe/group_gemm.h"
#include "runtime/rank_group.h"
#include "util/check.h"

namespace comet {
namespace {

// Scales the m dimension of every per-expert problem by `fraction`,
// rounding up (a pipeline chunk still covers whole rows).
std::vector<GemmShape> ToGemmShapes(const std::vector<GemmProblemSize>& in,
                                    double fraction) {
  std::vector<GemmShape> out;
  out.reserve(in.size());
  for (const auto& p : in) {
    const int64_t m = static_cast<int64_t>(
        std::max(0.0, std::ceil(static_cast<double>(p.m) * fraction)));
    out.push_back(GemmShape{m, p.n, p.k});
  }
  return out;
}

std::vector<std::vector<double>> ScaleMatrix(
    std::vector<std::vector<double>> m, double s) {
  for (auto& row : m) {
    for (auto& v : row) {
      v *= s;
    }
  }
  return m;
}

}  // namespace

BaselineQuantities ComputeQuantities(const MoeWorkload& workload,
                                     const OpCostModel& costs, int rank,
                                     double gemm_efficiency,
                                     double chunk_fraction) {
  COMET_CHECK_GT(chunk_fraction, 0.0);
  COMET_CHECK_LE(chunk_fraction, 1.0);
  const Placement& placement = workload.placement;
  const RoutePlan& plan = workload.plan;
  const ClusterSpec& cluster = costs.cluster();
  const double elt = costs.bytes_per_element();
  const double row_bytes =
      static_cast<double>(placement.model().embedding) * elt;

  // A dedicated GEMM model so TE can use its own sustained efficiency.
  const GemmCostModel gemm(cluster.gpu, 128, 128, gemm_efficiency, elt);

  BaselineQuantities q;
  q.gate_us = costs.GatingUs(placement.tokens_per_group(),
                             placement.model().embedding,
                             placement.model().num_experts);

  const int64_t rows = plan.ForRank(rank).TotalRows();
  const int64_t chunk_rows = static_cast<int64_t>(
      std::ceil(static_cast<double>(rows) * chunk_fraction));
  q.permute_us =
      costs.PermuteUs(chunk_rows, placement.model().embedding);
  q.unpermute_us =
      costs.PermuteUs(chunk_rows, placement.model().embedding) +
      costs.CombineReduceUs(chunk_rows, placement.model().embedding,
                            placement.model().topk);

  q.a2a_dispatch_us = AllToAllCostUs(
      cluster, ScaleMatrix(plan.DispatchBytes(row_bytes), chunk_fraction));
  q.a2a_return_us = AllToAllCostUs(
      cluster, ScaleMatrix(plan.EpReturnBytes(row_bytes), chunk_fraction));
  q.tp_reduce_scatter_us = RingReduceScatterCostUs(
      cluster, chunk_fraction * static_cast<double>(placement.parallel().tp) *
                   plan.TpReduceScatterBytesPerRank(row_bytes));

  const auto shapes0 = ToGemmShapes(plan.Layer0Problems(rank), chunk_fraction);
  const auto shapes1 = ToGemmShapes(plan.Layer1Problems(rank), chunk_fraction);
  q.gemm0_us = gemm.GroupTimeUs(shapes0, cluster.gpu.num_sms);
  q.gemm1_us = gemm.GroupTimeUs(shapes1, cluster.gpu.num_sms);
  for (const auto& s : shapes0) {
    q.gemm0_per_expert_us.push_back(gemm.TimeUs(s, cluster.gpu.num_sms));
  }
  for (const auto& s : shapes1) {
    q.gemm1_per_expert_us.push_back(gemm.TimeUs(s, cluster.gpu.num_sms));
  }
  q.activation_us =
      costs.ActivationUs(chunk_rows, placement.HiddenPerTpRank());
  return q;
}

void FinalizeFromRanks(std::vector<double> per_rank_us,
                       std::vector<Timeline> per_rank_timelines,
                       LayerExecution& out) {
  COMET_CHECK(!per_rank_us.empty());
  COMET_CHECK_EQ(per_rank_us.size(), per_rank_timelines.size());
  size_t worst = 0;
  for (size_t r = 1; r < per_rank_us.size(); ++r) {
    if (per_rank_us[r] > per_rank_us[worst]) {
      worst = r;
    }
  }
  out.duration_us = per_rank_us[worst];
  out.timeline = std::move(per_rank_timelines[worst]);
  out.per_rank_us = std::move(per_rank_us);
}

std::vector<Tensor> CanonicalFunctionalMoe(const MoeWorkload& workload) {
  const Placement& placement = workload.placement;
  const RoutePlan& plan = workload.plan;
  const ModelConfig& model = placement.model();
  const int tp = placement.parallel().tp;
  const int ep = placement.parallel().ep;
  const int64_t n_embed = model.embedding;
  const int64_t hidden = placement.HiddenPerTpRank();
  const int64_t topk = model.topk;
  const int64_t group_tokens = placement.tokens_per_group();
  // The baselines share numerics with the reference at the workload's
  // storage dtype (GEMM/activation round on store, combine rounds per row);
  // only scheduling differs across systems.
  const DType dtype = workload.dtype();

  // Per-group unweighted contribution buffers, one per TP lane:
  // contrib[g][lane] has (group_tokens * topk) rows.
  std::vector<std::vector<Tensor>> contrib(static_cast<size_t>(ep));
  for (auto& lanes : contrib) {
    for (int l = 0; l < tp; ++l) {
      lanes.emplace_back(Shape{group_tokens * topk, n_embed}, dtype);
    }
  }

  // One RankGroup task per EP group. The baselines separate communication
  // from computation with a full barrier (that is the point of the paper's
  // comparison), so the producer phase ends at a barrier instead of
  // per-row signals: contributions scatter into peer groups' buffers, the
  // barrier stands in for the return all-to-all, then every group combines.
  const auto produce = [&](int g) {
    const RankPlan& rank_plan = plan.ForGroup(g);
    for (size_t le = 0; le < rank_plan.experts.size(); ++le) {
      const auto& slice = rank_plan.experts[le];
      if (slice.rows.empty()) {
        continue;
      }
      // Canonical-order shared tensor (token ascending): the layout a plain
      // all-to-all dispatch produces.
      Tensor a(Shape{static_cast<int64_t>(slice.rows.size()), n_embed}, dtype);
      for (size_t i = 0; i < slice.rows.size(); ++i) {
        a.SetRow(static_cast<int64_t>(i),
                 workload.TokenRow(slice.rows[i].token));
      }
      for (int l = 0; l < tp; ++l) {
        Tensor h(Shape{a.rows(), hidden}, dtype);
        Gemm(a, workload.sharded_weights->W0Shard(slice.expert, l), h);
        ApplyActivation(h, workload.activation);
        Tensor y(Shape{a.rows(), n_embed}, dtype);
        Gemm(h, workload.sharded_weights->W1Shard(slice.expert, l), y);
        for (size_t i = 0; i < slice.rows.size(); ++i) {
          const ExpertRow& row = slice.rows[i];
          const int64_t dst_row =
              (row.token - placement.FirstTokenOfGroup(row.source_group)) *
                  topk +
              row.slot;
          contrib[static_cast<size_t>(row.source_group)][static_cast<size_t>(l)]
              .SetRow(dst_row, y.row(static_cast<int64_t>(i)));
        }
      }
    }
  };

  // Canonical combine: slot-major, TP-lane inner.
  std::vector<Tensor> outputs(static_cast<size_t>(ep));
  const auto consume = [&](int g) {
    Tensor result(Shape{group_tokens, n_embed}, dtype);
    const int64_t first = placement.FirstTokenOfGroup(g);
    for (int64_t t = 0; t < group_tokens; ++t) {
      const TokenRoute& route =
          workload.routing.tokens[static_cast<size_t>(first + t)];
      // Routes may carry fewer than topk entries (capacity-dropped pairs);
      // only written slots are consumed.
      const int64_t slots = static_cast<int64_t>(route.experts.size());
      for (int64_t k = 0; k < slots; ++k) {
        for (int l = 0; l < tp; ++l) {
          result.AccumulateRow(
              t,
              contrib[static_cast<size_t>(g)][static_cast<size_t>(l)].row(
                  t * topk + k),
              route.weights[static_cast<size_t>(k)]);
        }
      }
      // f32 accumulate, one rounding per output row (reference contract).
      result.QuantizeRow(t);
    }
    outputs[static_cast<size_t>(g)] = std::move(result);
  };

  RankGroup group(ep, RankGroupOptions{.phase_barrier = true});
  group.Run(produce, consume);
  return outputs;
}

}  // namespace comet
