// Tutel baseline (paper §5.1 (d); Hwang et al., MLSys'23).
//
// Tutel overlaps all-to-all with expert computation at an adaptive pipeline
// degree chosen by a heuristic search over a limited space, and replaces the
// flat all-to-all with a 2D-hierarchical algorithm: better wire utilization
// at the cost of extra local encode/decode passes over the data. Scheduling
// is still kernel-per-op, and the number of kernels the host must manage
// grows with the pipeline degree and with E and topk -- the paper's
// explanation for Tutel's fading advantage on Qwen2 (64 experts).
#pragma once

#include "baselines/common.h"

namespace comet {

class TutelExecutor : public MoeLayerExecutor {
 public:
  TutelExecutor() = default;

  std::string name() const override { return "Tutel"; }
  bool Supports(const ParallelConfig&) const override { return true; }
  LayerExecution Run(const MoeWorkload& workload, const ClusterSpec& cluster,
                     ExecMode mode) override;

  // Pipeline degree the heuristic search picked in the last Run.
  int last_pipeline_degree() const { return last_degree_; }

 private:
  double SimulateRank(const MoeWorkload& workload, const OpCostModel& costs,
                      int rank, int degree, Timeline* timeline) const;

  // The limited search space of pipeline degrees.
  static constexpr int kDegrees[3] = {1, 2, 4};
  // 2D-hierarchical all-to-all wire efficiency.
  static constexpr double kHierarchicalCommFactor = 0.85;
  // Extra encode/decode passes around each all-to-all.
  static constexpr double kEncodeFactor = 1.25;
  // Host scheduling cost per (expert, topk) pair per chunk, us.
  static constexpr double kPerExpertTopkHostUs = 0.05;

  int last_degree_ = 0;
};

}  // namespace comet
